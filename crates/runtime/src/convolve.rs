//! The run-time library's main entry point: executing a compiled stencil
//! over distributed arrays.
//!
//! One stencil call does, in order (§5): allocate temporary storage, copy
//! the source subgrid into it, perform the halo exchange (all four
//! neighbors at once, then corners if the pattern needs them), then strip-
//! mine the subgrid — shaving the widest workable strip each time — and
//! run each strip as two half-strips through the compiled kernels. The
//! call returns a [`Measurement`] with the paper's accounting: useful
//! flops only, and cycles split into communication, compute, and
//! front-end overhead.

use crate::array::CmArray;
use crate::error::RuntimeError;
use crate::halo::ExchangePrimitive;
use crate::plan::{ExecutionPlan, PlanLifetime, StencilBinding};
use cmcc_cm2::exec::{ExecEngine, ExecMode};
use cmcc_cm2::machine::Machine;
use cmcc_cm2::timing::Measurement;
use cmcc_core::compiler::CompiledStencil;

/// Execution options for one stencil call. Part of a plan-cache key
/// (hence `Hash`): plans built under different options are distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecOptions {
    /// Cycle-accurate (timed) or fast functional execution.
    pub mode: ExecMode,
    /// Which interpreter runs fast-mode kernels: the node-outer scalar
    /// path or the step-outer lockstep broadcast over node lanes
    /// (bit-identical results; cycle mode always runs scalar). Plans
    /// fall back to scalar when a binding cannot be lane-mapped (array
    /// aliasing).
    pub engine: ExecEngine,
    /// Process strips as two half-strips (the paper's scheme) or as one
    /// full pass (the ablation's alternative).
    pub half_strips: bool,
    /// Which communication primitive prices the halo exchange.
    pub primitive: ExchangePrimitive,
    /// Skip the corner-exchange step when the stencil has no diagonal
    /// taps ("the test is very easy and quick", §5.1). Disabled only by
    /// the corner ablation.
    pub skip_corners_when_possible: bool,
    /// Host threads kernel execution fans out over (clamped to
    /// `1..=node_count`; `1` is the serial path). The scalar engine
    /// splits whole nodes across threads; the lockstep engine splits
    /// lanes within each step. Results and [`Measurement`]s are
    /// bit-identical for every value — the node reduction is
    /// deterministic — so this knob trades wall-clock time only.
    /// Defaults to the host's available parallelism.
    pub threads: usize,
    /// Keep the lockstep lane mirror resident inside the plan across
    /// executes (the default): read-only operands are gathered once, the
    /// halo exchange runs directly on the mirror, and only writable
    /// ranges are scattered back per iteration. `false` restores the
    /// gather-everything/exchange-on-nodes path each execute — same
    /// results and `Measurement`s bit for bit, more copying. Ignored by
    /// the scalar engine and cycle mode. See DESIGN.md §12 for the
    /// invalidation rules.
    pub lane_resident: bool,
    /// Fuse this many time steps per halo exchange (temporal tiling).
    /// `1` (the default) is the classic one-exchange-per-execute loop.
    /// With `k > 1` the plan deepens every halo to `k·radius`, and a
    /// single `execute` applies the stencil `k` times — ping-ponging
    /// between lane-private scratch states with a shrinking valid
    /// region per inner step — before one interior refresh, one
    /// exchange, and one writable-only scatter. Callers therefore
    /// advance `k` time steps per `execute`; query the plan's
    /// effective depth via `ExecutionPlan::temporal_depth()` (the
    /// planner clamps back to `1` — and counts `TemporalFallbacks` —
    /// when the request cannot be honored: scalar engine, cycle mode,
    /// multi-source stencils, pointwise stencils, non-resident lanes,
    /// or subgrids smaller than `k·radius`). Part of the plan-cache
    /// key like every other option.
    pub temporal_depth: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            mode: ExecMode::Cycle,
            engine: ExecEngine::default(),
            half_strips: true,
            primitive: ExchangePrimitive::News,
            skip_corners_when_possible: true,
            threads: default_threads(),
            lane_resident: true,
            temporal_depth: 1,
        }
    }
}

/// The host's available parallelism (`1` when it cannot be queried).
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl ExecOptions {
    /// Fast functional execution (no timing) — for applications that
    /// iterate many time steps and validate results rather than cycles.
    pub fn fast() -> Self {
        ExecOptions {
            mode: ExecMode::Fast,
            ..Self::default()
        }
    }

    /// Today's serial execution path (`threads = 1`) — for
    /// wall-clock-reproducible benchmarking of the simulator itself.
    pub fn serial() -> Self {
        ExecOptions {
            threads: 1,
            ..Self::default()
        }
    }

    /// The same options with a pinned thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        ExecOptions { threads, ..self }
    }

    /// The same options with a pinned fast-mode engine.
    pub fn with_engine(self, engine: ExecEngine) -> Self {
        ExecOptions { engine, ..self }
    }

    /// The same options with lane residency pinned (`false` forces the
    /// per-execute gather/scatter + node-domain exchange baseline).
    pub fn with_lane_resident(self, lane_resident: bool) -> Self {
        ExecOptions {
            lane_resident,
            ..self
        }
    }

    /// The same options with a requested temporal-tiling depth: one
    /// `execute` fuses up to `k` time steps per halo exchange. `0` is
    /// treated as `1`.
    pub fn with_temporal_depth(self, k: usize) -> Self {
        ExecOptions {
            temporal_depth: k.max(1),
            ..self
        }
    }
}

/// Executes `compiled` on `machine`: `result = stencil(source, coeffs)`.
///
/// `coeffs` supplies one distributed array per *named* coefficient of the
/// statement, in the order [`cmcc_core::recognize::StencilSpec::coeffs`]
/// lists them (literal coefficients are materialized internally).
///
/// # Errors
///
/// Shape mismatches, halo-too-deep subgrids, wrong coefficient counts,
/// node-memory exhaustion, or (indicating a compiler bug) a pipeline
/// hazard.
///
/// # Examples
///
/// ```
/// use cmcc_cm2::{Machine, MachineConfig};
/// use cmcc_core::Compiler;
/// use cmcc_runtime::{convolve, CmArray, ExecOptions};
///
/// let mut machine = Machine::new(MachineConfig::tiny_4())?;
/// let compiled = Compiler::new(machine.config().clone())
///     .compile_assignment("R = 0.25 * CSHIFT(X, 1, -1) + 0.75 * X")?;
/// let x = CmArray::new(&mut machine, 8, 8)?;
/// let r = CmArray::new(&mut machine, 8, 8)?;
/// x.fill(&mut machine, 4.0);
/// let m = convolve(&mut machine, &compiled, &r, &x, &[], &ExecOptions::default())?;
/// assert_eq!(r.get(&machine, 3, 3), 4.0);
/// assert!(m.cycles.total() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn convolve(
    machine: &mut Machine,
    compiled: &CompiledStencil,
    result: &CmArray,
    source: &CmArray,
    coeffs: &[&CmArray],
    opts: &ExecOptions,
) -> Result<Measurement, RuntimeError> {
    convolve_multi(machine, compiled, result, &[source], coeffs, opts)
}

/// Executes a (possibly multi-source) stencil: `result = stencil(sources,
/// coeffs)`. One array per entry of
/// [`cmcc_core::recognize::StencilSpec::sources`], in order — the §9
/// future-work extension ("handle all ten terms as one stencil pattern").
///
/// # Errors
///
/// As [`convolve`], plus [`RuntimeError::WrongSourceCount`] when the
/// source list does not match the statement.
pub fn convolve_multi(
    machine: &mut Machine,
    compiled: &CompiledStencil,
    result: &CmArray,
    sources: &[&CmArray],
    coeffs: &[&CmArray],
    opts: &ExecOptions,
) -> Result<Measurement, RuntimeError> {
    // The four phases run back to back: bind (validate), plan (allocate
    // temporaries, compile the exchange, resolve the schedule), execute,
    // release. Temporary allocations live only for this call (§5: the
    // run-time library "takes care of allocating temporary memory
    // space"); callers that iterate keep the plan instead — see
    // [`crate::plan`] and the session-level plan cache.
    let binding = StencilBinding::new(compiled, result, sources, coeffs)?;
    let mark = machine.alloc_mark();
    let outcome = (|| {
        let mut plan = ExecutionPlan::build(machine, &binding, opts, PlanLifetime::Scoped)?;
        plan.execute(machine)
    })();
    machine.release_to(mark);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_convolve, CoeffValue};
    use cmcc_cm2::config::MachineConfig;
    use cmcc_core::compiler::Compiler;
    use cmcc_core::patterns::PaperPattern;
    use cmcc_core::recognize::CoeffSpec;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny_4()).unwrap()
    }

    /// Runs `compiled` on an 8×12 problem and compares against the
    /// reference evaluator, bit for bit.
    fn check(source_text: &str, mode: ExecMode) {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment(source_text)
            .unwrap();
        let spec = compiled.spec();
        let (rows, cols) = (8usize, 12usize);

        let x = CmArray::new(&mut m, rows, cols).unwrap();
        x.fill_with(&mut m, |r, c| ((r * 31 + c * 17) % 23) as f32 * 0.375 - 3.0);

        let mut coeff_arrays = Vec::new();
        for (i, c) in spec.coeffs.iter().enumerate() {
            match c {
                CoeffSpec::Named(_) => {
                    let arr = CmArray::new(&mut m, rows, cols).unwrap();
                    arr.fill_with(&mut m, move |r, c| {
                        ((r * 7 + c * 3 + i * 11) % 13) as f32 * 0.25 - 1.0
                    });
                    coeff_arrays.push(arr);
                }
                CoeffSpec::Literal(_) => {}
            }
        }
        let r = CmArray::new(&mut m, rows, cols).unwrap();

        let refs: Vec<&CmArray> = coeff_arrays.iter().collect();
        let opts = ExecOptions {
            mode,
            ..ExecOptions::default()
        };
        let measurement = convolve(&mut m, &compiled, &r, &x, &refs, &opts).unwrap();

        // Host-side golden model.
        let x_host = x.gather(&m);
        let coeff_host: Vec<Vec<f32>> = coeff_arrays.iter().map(|a| a.gather(&m)).collect();
        let mut host_iter = coeff_host.iter();
        let values: Vec<CoeffValue<'_>> = spec
            .coeffs
            .iter()
            .map(|c| match c {
                CoeffSpec::Named(_) => CoeffValue::Array(host_iter.next().unwrap()),
                CoeffSpec::Literal(v) => CoeffValue::Literal(*v),
            })
            .collect();
        let want = reference_convolve(compiled.stencil(), rows, cols, &x_host, &values);
        let got = r.gather(&m);
        for i in 0..want.len() {
            assert_eq!(
                got[i].to_bits(),
                want[i].to_bits(),
                "element ({}, {}): got {}, want {}",
                i / cols,
                i % cols,
                got[i],
                want[i]
            );
        }
        match mode {
            ExecMode::Cycle => assert!(measurement.cycles.total() > 0),
            ExecMode::Fast => assert_eq!(measurement.cycles.compute, 0),
        }
        assert_eq!(
            measurement.useful_flops,
            compiled.stencil().useful_flops_per_point() * (rows * cols) as u64
        );
    }

    #[test]
    fn all_paper_patterns_match_reference() {
        for p in PaperPattern::ALL {
            check(&p.fortran(), ExecMode::Cycle);
        }
    }

    #[test]
    fn fast_mode_matches_reference_too() {
        check(&PaperPattern::Square9.fortran(), ExecMode::Fast);
    }

    #[test]
    fn literal_coefficients_and_unit_taps() {
        check(
            "R = 0.25 * CSHIFT(X, 1, -1) + X + 0.25 * CSHIFT(X, 1, +1) + B",
            ExecMode::Cycle,
        );
    }

    #[test]
    fn eoshift_boundary_fill_value_end_to_end() {
        // Neumann-ish wall at 100.0: the halo beyond the global edge is
        // filled with the BOUNDARY= constant, machine and reference alike.
        check(
            "R = 0.5 * EOSHIFT(X, 1, -1, BOUNDARY=100.0) + 0.5 * X",
            ExecMode::Cycle,
        );
        // And observably: the top row blends toward 100.
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment("R = 0.5 * EOSHIFT(X, 1, -1, BOUNDARY=100.0) + 0.5 * X")
            .unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill(&mut m, 0.0);
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        convolve(&mut m, &compiled, &r, &x, &[], &ExecOptions::default()).unwrap();
        assert_eq!(r.get(&m, 0, 3), 50.0);
        assert_eq!(r.get(&m, 1, 3), 0.0);
    }

    #[test]
    fn eoshift_boundary() {
        check(
            "R = C1 * EOSHIFT(X, 1, -1) + C2 * X + C3 * EOSHIFT(X, 2, +1)",
            ExecMode::Cycle,
        );
    }

    #[test]
    fn wide_border_stencil() {
        check(
            "R = C1 * CSHIFT(X, 2, -2) + C2 * X + C3 * CSHIFT(CSHIFT(X, 1, +2), 2, +1)",
            ExecMode::Cycle,
        );
    }

    #[test]
    fn full_strip_option_matches_reference() {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment(&PaperPattern::Cross5.fortran())
            .unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill_with(&mut m, |r, c| (r * 8 + c) as f32);
        let coeffs: Vec<CmArray> = (0..5)
            .map(|i| {
                let a = CmArray::new(&mut m, 8, 8).unwrap();
                a.fill(&mut m, 0.1 * (i + 1) as f32);
                a
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r_half = CmArray::new(&mut m, 8, 8).unwrap();
        let r_full = CmArray::new(&mut m, 8, 8).unwrap();
        let half = convolve(
            &mut m,
            &compiled,
            &r_half,
            &x,
            &refs,
            &ExecOptions::default(),
        )
        .unwrap();
        let full = convolve(
            &mut m,
            &compiled,
            &r_full,
            &x,
            &refs,
            &ExecOptions {
                half_strips: false,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r_half.gather(&m), r_full.gather(&m));
        // Full strips pay one startup per strip rather than two.
        assert!(full.cycles.compute < half.cycles.compute);
        assert!(full.cycles.frontend < half.cycles.frontend);
    }

    #[test]
    fn corner_skip_saves_cycles_for_cross() {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment(&PaperPattern::Cross5.fortran())
            .unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let coeffs: Vec<CmArray> = (0..5)
            .map(|_| CmArray::new(&mut m, 8, 8).unwrap())
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let skip = convolve(&mut m, &compiled, &r, &x, &refs, &ExecOptions::default()).unwrap();
        let noskip = convolve(
            &mut m,
            &compiled,
            &r,
            &x,
            &refs,
            &ExecOptions {
                skip_corners_when_possible: false,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert!(noskip.cycles.comm > skip.cycles.comm);
    }

    #[test]
    fn old_primitive_costs_more() {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment(&PaperPattern::Cross5.fortran())
            .unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let coeffs: Vec<CmArray> = (0..5)
            .map(|_| CmArray::new(&mut m, 8, 8).unwrap())
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let new = convolve(&mut m, &compiled, &r, &x, &refs, &ExecOptions::default()).unwrap();
        let old = convolve(
            &mut m,
            &compiled,
            &r,
            &x,
            &refs,
            &ExecOptions {
                primitive: ExchangePrimitive::OldPerDirection,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert!(old.cycles.comm > new.cycles.comm);
        assert_eq!(old.cycles.compute, new.cycles.compute);
    }

    #[test]
    fn temporary_memory_is_released() {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment("R = 0.5 * X")
            .unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let before = m.alloc_mark();
        for _ in 0..5 {
            convolve(&mut m, &compiled, &r, &x, &[], &ExecOptions::default()).unwrap();
        }
        assert_eq!(m.alloc_mark(), before, "temporaries must be released");
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment("R = C * X")
            .unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r_bad = CmArray::new(&mut m, 8, 12).unwrap();
        let c = CmArray::new(&mut m, 8, 8).unwrap();
        let err = convolve(
            &mut m,
            &compiled,
            &r_bad,
            &x,
            &[&c],
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::ShapeMismatch { .. }));
    }

    #[test]
    fn wrong_coefficient_count_rejected() {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment("R = C1 * X + C2 * CSHIFT(X, 1, 1)")
            .unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let err = convolve(&mut m, &compiled, &r, &x, &[], &ExecOptions::default()).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::WrongCoeffCount {
                expected: 2,
                got: 0
            }
        );
    }

    #[test]
    fn halo_deeper_than_subgrid_is_rejected() {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment("R = C * CSHIFT(X, 1, -5)")
            .unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap(); // 4x4 subgrids
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let c = CmArray::new(&mut m, 8, 8).unwrap();
        let err = convolve(&mut m, &compiled, &r, &x, &[&c], &ExecOptions::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::SubgridTooSmall { .. }));
    }
}
