//! The pre-plan, rebuild-per-iteration stencil executor, preserved
//! verbatim as a differential reference.
//!
//! Before the compile → bind → plan → execute split ([`crate::plan`]),
//! every [`crate::convolve()`] call re-did all one-time work: it cloned
//! the machine config, allocated fresh halo buffers and constant/literal
//! pages, refilled them on every node, rebuilt the coefficient address
//! tables, re-planned strips, re-materialized the schedule, and resolved
//! every memory address per step inside
//! [`cmcc_cm2::machine::Machine::run_schedule_all`].
//!
//! That behavior is kept here, unoptimized on purpose, for two jobs:
//!
//! * **differential testing** — the plan pipeline must stay bit-identical
//!   (results *and* [`Measurement`]s) to this path, which the convolve
//!   and plan test suites assert;
//! * **benchmarking** — `repro_plan_cache` uses it as the honest
//!   rebuild-per-iteration baseline when measuring what plan reuse buys.
//!
//! New code should call [`crate::convolve()`] or build an
//! [`crate::plan::ExecutionPlan`]; nothing besides tests and benches
//! should depend on this module.

use crate::array::CmArray;
use crate::error::RuntimeError;
use crate::halo::HaloBuffer;
use crate::strips::{full_strip, halfstrips, plan_strips};
use cmcc_cm2::exec::{FieldLayout, ScheduleStep, StripContext};
use cmcc_cm2::machine::Machine;
use cmcc_cm2::timing::{CycleBreakdown, Measurement};
use cmcc_core::compiler::CompiledStencil;
use cmcc_core::recognize::CoeffSpec;
use cmcc_core::regalloc::Walk;

use crate::convolve::ExecOptions;

/// Executes a (possibly multi-source) stencil the way the run-time
/// library did before execution plans existed: all setup redone on every
/// call, every address resolved per step.
///
/// Produces results and [`Measurement`]s bit-identical to
/// [`crate::convolve_multi`] — the refactor's central invariant.
///
/// # Errors
///
/// As [`crate::convolve_multi`]: shape mismatches, halo-too-deep
/// subgrids, wrong source/coefficient counts, node-memory exhaustion, or
/// (indicating a compiler bug) a pipeline hazard.
pub fn convolve_per_call(
    machine: &mut Machine,
    compiled: &CompiledStencil,
    result: &CmArray,
    sources: &[&CmArray],
    coeffs: &[&CmArray],
    opts: &ExecOptions,
) -> Result<Measurement, RuntimeError> {
    let spec = compiled.spec();
    let stencil = compiled.stencil();

    // Argument checking (the front end's job on the real machine).
    let expected_sources = stencil.source_count().max(1);
    if sources.len() != expected_sources {
        return Err(RuntimeError::WrongSourceCount {
            expected: expected_sources,
            got: sources.len(),
        });
    }
    let source = sources[0];
    for (i, s) in sources.iter().enumerate() {
        if !result.same_shape(s) {
            return Err(RuntimeError::ShapeMismatch {
                what: format!(
                    "result is {}x{} but source {i} is {}x{}",
                    result.rows(),
                    result.cols(),
                    s.rows(),
                    s.cols()
                ),
            });
        }
    }
    let named: Vec<&str> = spec
        .coeffs
        .iter()
        .filter_map(|c| match c {
            CoeffSpec::Named(n) => Some(n.as_str()),
            CoeffSpec::Literal(_) => None,
        })
        .collect();
    if coeffs.len() != named.len() {
        return Err(RuntimeError::WrongCoeffCount {
            expected: named.len(),
            got: coeffs.len(),
        });
    }
    for (arr, name) in coeffs.iter().zip(&named) {
        if !arr.same_shape(source) {
            return Err(RuntimeError::ShapeMismatch {
                what: format!(
                    "coefficient `{name}` is {}x{}, expected {}x{}",
                    arr.rows(),
                    arr.cols(),
                    source.rows(),
                    source.cols()
                ),
            });
        }
    }

    // Per-call work the plan pipeline hoists out of the iteration loop —
    // preserved here deliberately; this module *is* the baseline.
    let cfg = machine.config().clone();
    let sub_rows = source.sub_rows();
    let sub_cols = source.sub_cols();
    let pad = stencil.borders().max_width() as usize;

    // Temporary allocations live only for this call (§5: the run-time
    // library "takes care of allocating temporary memory space").
    let mark = machine.alloc_mark();
    let outcome = (|| {
        let halos: Vec<HaloBuffer> = sources
            .iter()
            .map(|_| HaloBuffer::new(machine, sub_rows, sub_cols, pad))
            .collect::<Result<_, _>>()?;
        // Constant pages: one word each of 1.0 and 0.0, plus one
        // `sub_cols`-wide page per literal coefficient (streamed with a
        // zero row stride).
        let consts = machine.alloc_field(2)?;
        let mut literal_pages = Vec::new();
        for c in &spec.coeffs {
            match c {
                CoeffSpec::Literal(v) => {
                    let page = machine.alloc_field(sub_cols)?;
                    literal_pages.push(Some((page, *v)));
                }
                CoeffSpec::Named(_) => literal_pages.push(None),
            }
        }
        for node in machine.grid().iter().collect::<Vec<_>>() {
            let mem = machine.mem_mut(node);
            mem.write(consts.addr(0), 1.0);
            mem.write(consts.addr(1), 0.0);
            for page in literal_pages.iter().flatten() {
                mem.fill_field(page.0, page.1);
            }
        }

        let need_corners = if opts.skip_corners_when_possible {
            stencil.needs_corner_exchange()
        } else {
            pad > 0
        };
        let mut comm = 0;
        for (halo, src) in halos.iter().zip(sources) {
            halo.fill_interior(machine, src);
            comm += halo.exchange_with_fill(
                machine,
                stencil.boundary(),
                stencil.fill(),
                need_corners,
                opts.primitive,
            );
        }

        // Coefficient address tables, indexed like `MemRef::Coeff.array`.
        let mut named_iter = coeffs.iter();
        let coeff_layouts: Vec<FieldLayout> = spec
            .coeffs
            .iter()
            .zip(&literal_pages)
            .map(|(c, page)| match c {
                CoeffSpec::Named(_) => named_iter
                    .next()
                    .expect("coefficient count was validated")
                    .layout(),
                CoeffSpec::Literal(_) => {
                    let (page, _) = page.expect("literal page was allocated");
                    FieldLayout {
                        base: page.base(),
                        row_stride: 0,
                        row_offset: 0,
                        col_offset: 0,
                    }
                }
            })
            .collect();

        // Strip mining: build the whole schedule, then run it per node
        // with per-step address resolution.
        let mut compute: u64 = 0;
        let mut frontend: u64 = u64::from(cfg.call_overhead_cycles);
        let halves = if opts.half_strips {
            halfstrips(sub_rows)
        } else {
            full_strip(sub_rows)
        };
        let src_layouts: Vec<FieldLayout> = halos.iter().map(HaloBuffer::layout).collect();
        let mut schedule = Vec::new();
        for strip in plan_strips(compiled, sub_cols) {
            let sk = compiled
                .widest_kernel_for(strip.width)
                .expect("plan_strips used compiled widths");
            debug_assert_eq!(sk.width, strip.width);
            for half in &halves {
                let kernel = match half.walk {
                    Walk::North => &sk.north,
                    Walk::South => &sk.south,
                };
                schedule.push(ScheduleStep {
                    kernel,
                    ctx: StripContext {
                        srcs: &src_layouts,
                        res: result.layout(),
                        coeffs: &coeff_layouts,
                        ones_addr: consts.addr(0),
                        zeros_addr: consts.addr(1),
                        start_row: half.start_row as i64,
                        lines: half.lines,
                        col0: strip.col0 as i64,
                    },
                });
            }
        }
        for run in machine.run_schedule_all(&schedule, opts.mode, opts.threads)? {
            compute += run.cycles;
            frontend += u64::from(cfg.frontend_dispatch_cycles);
        }

        Ok(Measurement {
            useful_flops: stencil.useful_flops_per_point() * (source.rows() * source.cols()) as u64,
            cycles: CycleBreakdown {
                comm,
                compute,
                frontend,
            },
            nodes: machine.node_count(),
        })
    })();
    machine.release_to(mark);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolve::convolve_multi;
    use cmcc_cm2::config::MachineConfig;
    use cmcc_cm2::exec::ExecMode;
    use cmcc_core::compiler::Compiler;
    use cmcc_core::patterns::PaperPattern;

    /// The refactor's central invariant, asserted against the preserved
    /// pre-plan path itself: the plan pipeline matches the old per-call
    /// path bit for bit, results and measurements.
    #[test]
    fn plan_pipeline_matches_the_old_per_call_path() {
        for pattern in PaperPattern::ALL {
            for mode in [ExecMode::Cycle, ExecMode::Fast] {
                let mut m = Machine::new(MachineConfig::tiny_4()).unwrap();
                let compiled = Compiler::new(m.config().clone())
                    .compile_assignment(&pattern.fortran())
                    .unwrap();
                let spec = compiled.spec();
                let (rows, cols) = (8usize, 12usize);

                let x = CmArray::new(&mut m, rows, cols).unwrap();
                x.fill_with(&mut m, |r, c| ((r * 31 + c * 17) % 23) as f32 * 0.375 - 3.0);
                let mut coeff_arrays = Vec::new();
                for (i, c) in spec.coeffs.iter().enumerate() {
                    if matches!(c, CoeffSpec::Named(_)) {
                        let arr = CmArray::new(&mut m, rows, cols).unwrap();
                        arr.fill_with(&mut m, move |r, c| {
                            ((r * 7 + c * 3 + i * 11) % 13) as f32 * 0.25 - 1.0
                        });
                        coeff_arrays.push(arr);
                    }
                }
                let r_old = CmArray::new(&mut m, rows, cols).unwrap();
                let r_new = CmArray::new(&mut m, rows, cols).unwrap();
                let refs: Vec<&CmArray> = coeff_arrays.iter().collect();
                let opts = ExecOptions {
                    mode,
                    ..ExecOptions::serial()
                };

                let m_old =
                    convolve_per_call(&mut m, &compiled, &r_old, &[&x], &refs, &opts).unwrap();
                let m_new = convolve_multi(&mut m, &compiled, &r_new, &[&x], &refs, &opts).unwrap();

                assert_eq!(
                    m_old,
                    m_new,
                    "{} ({mode:?}): measurements differ",
                    pattern.name()
                );
                let old = r_old.gather(&m);
                let new = r_new.gather(&m);
                for i in 0..old.len() {
                    assert_eq!(
                        old[i].to_bits(),
                        new[i].to_bits(),
                        "{} ({mode:?}): element {i} diverged",
                        pattern.name()
                    );
                }
            }
        }
    }
}
