//! Compile once, run many: the bind → plan → execute pipeline.
//!
//! The paper's system compiles a stencil statement once and then calls it
//! "many times — typically thousands" (§1). The original [`crate::convolve()`]
//! entry point repeated every run-time decision on each call: allocating
//! halo storage, materializing constant pages, computing exchange
//! addresses, and rebuilding the strip schedule. This module splits those
//! out:
//!
//! 1. **compile** — [`cmcc_core::Compiler`] produces a
//!    [`CompiledStencil`] (unchanged), now carrying a stable
//!    [`CompiledStencil::fingerprint`];
//! 2. **bind** — [`StencilBinding`] attaches result/source/coefficient
//!    arrays to the compiled stencil and validates shapes and counts
//!    once;
//! 3. **plan** — [`ExecutionPlan::build`] allocates halo buffers and
//!    constant pages, compiles the halo exchange into an
//!    [`ExchangeProgram`] per source, and pre-resolves the entire strip
//!    schedule into [`ResolvedStrip`]s (every kernel operand address
//!    computed ahead of time);
//! 4. **execute** — [`ExecutionPlan::execute`] performs only the halo
//!    exchange, the pre-resolved kernel runs, and the paper's cycle
//!    accounting. No allocation, no address computation, no schedule
//!    construction.
//!
//! Results and [`Measurement`]s are bit-identical to the rebuild-per-call
//! path — the resolved executor mirrors the legacy interpreter step for
//! step — so plans are purely a host-side performance feature, exactly
//! like the paper's distinction between compile-time and run-time work.

use crate::array::CmArray;
use crate::convolve::ExecOptions;
use crate::error::RuntimeError;
use crate::halo::{ExchangeProgram, HaloBuffer, LaneExchangeProgram};
use crate::strips::{full_strip, halfstrips, plan_strips};
use cmcc_cm2::exec::{ExecEngine, ExecMode, FieldLayout, ResolvedStrip, StripContext};
use cmcc_cm2::kernels::{run_lockstep_groups_kernelized, CoeffStreams, StripKernels};
use cmcc_cm2::lane::{LaneMirror, LaneView, RectCopy};
use cmcc_cm2::machine::Machine;
use cmcc_cm2::memory::Field;
use cmcc_cm2::timing::{CycleBreakdown, Measurement};
use cmcc_core::compiler::CompiledStencil;
use cmcc_core::recognize::CoeffSpec;
use cmcc_core::regalloc::Walk;

/// A compiled stencil bound to concrete distributed arrays, with all
/// shape and count validation done up front (the front end's job on the
/// real machine).
///
/// Binding is cheap — [`CmArray`] handles are `Copy` — and performs no
/// machine allocation; it exists so that validation errors surface before
/// any planning work starts.
#[derive(Debug, Clone)]
pub struct StencilBinding<'a> {
    compiled: &'a CompiledStencil,
    result: CmArray,
    sources: Vec<CmArray>,
    coeffs: Vec<CmArray>,
}

impl<'a> StencilBinding<'a> {
    /// Validates and records the argument arrays for one stencil call.
    ///
    /// `sources` supplies one array per entry of
    /// [`cmcc_core::recognize::StencilSpec::sources`]; `coeffs` one array
    /// per *named* coefficient, in [`StencilSpec::coeffs`] order (literal
    /// coefficients are materialized by the plan).
    ///
    /// [`StencilSpec::coeffs`]: cmcc_core::recognize::StencilSpec::coeffs
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WrongSourceCount`], [`RuntimeError::WrongCoeffCount`],
    /// or [`RuntimeError::ShapeMismatch`] when the argument lists do not
    /// match the statement.
    pub fn new(
        compiled: &'a CompiledStencil,
        result: &CmArray,
        sources: &[&CmArray],
        coeffs: &[&CmArray],
    ) -> Result<Self, RuntimeError> {
        let spec = compiled.spec();
        let stencil = compiled.stencil();

        let expected_sources = stencil.source_count().max(1);
        if sources.len() != expected_sources {
            return Err(RuntimeError::WrongSourceCount {
                expected: expected_sources,
                got: sources.len(),
            });
        }
        for (i, s) in sources.iter().enumerate() {
            if !result.same_shape(s) {
                return Err(RuntimeError::ShapeMismatch {
                    what: format!(
                        "result is {}x{} but source {i} is {}x{}",
                        result.rows(),
                        result.cols(),
                        s.rows(),
                        s.cols()
                    ),
                });
            }
        }
        let named: Vec<&str> = spec
            .coeffs
            .iter()
            .filter_map(|c| match c {
                CoeffSpec::Named(n) => Some(n.as_str()),
                CoeffSpec::Literal(_) => None,
            })
            .collect();
        if coeffs.len() != named.len() {
            return Err(RuntimeError::WrongCoeffCount {
                expected: named.len(),
                got: coeffs.len(),
            });
        }
        for (arr, name) in coeffs.iter().zip(&named) {
            if !arr.same_shape(result) {
                return Err(RuntimeError::ShapeMismatch {
                    what: format!(
                        "coefficient `{name}` is {}x{}, expected {}x{}",
                        arr.rows(),
                        arr.cols(),
                        result.rows(),
                        result.cols()
                    ),
                });
            }
        }

        Ok(StencilBinding {
            compiled,
            result: *result,
            sources: sources.iter().map(|s| **s).collect(),
            coeffs: coeffs.iter().map(|c| **c).collect(),
        })
    }

    /// The compiled stencil this binding attaches arrays to.
    pub fn compiled(&self) -> &'a CompiledStencil {
        self.compiled
    }

    /// The bound result array.
    pub fn result(&self) -> &CmArray {
        &self.result
    }

    /// The bound source arrays.
    pub fn sources(&self) -> &[CmArray] {
        &self.sources
    }

    /// The bound named-coefficient arrays.
    pub fn coeffs(&self) -> &[CmArray] {
        &self.coeffs
    }
}

/// Where a plan's node-memory fields live, which decides how they are
/// reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanLifetime {
    /// Fields come from the bump region and are reclaimed by the caller's
    /// [`Machine::release_to`] — the one-shot [`crate::convolve()`] path.
    Scoped,
    /// Fields come from the persistent arena and survive across calls
    /// until [`ExecutionPlan::release`] — the cached-plan path.
    Persistent,
}

/// Everything a stencil call decides ahead of its first iteration:
/// halo buffers, compiled exchange programs, constant/literal pages, and
/// the fully address-resolved strip schedule.
///
/// Build once with [`ExecutionPlan::build`], run any number of times with
/// [`ExecutionPlan::execute`], retarget to other same-shape arrays with
/// [`ExecutionPlan::rebind`]. A steady-state execute performs **zero**
/// field allocations (observable via [`Machine::alloc_count`]) and zero
/// schedule rebuilds.
///
/// # Examples
///
/// ```
/// use cmcc_cm2::{Machine, MachineConfig};
/// use cmcc_core::Compiler;
/// use cmcc_runtime::{CmArray, ExecOptions, ExecutionPlan, PlanLifetime, StencilBinding};
///
/// let mut machine = Machine::new(MachineConfig::tiny_4())?;
/// let compiled = Compiler::new(machine.config().clone())
///     .compile_assignment("R = 0.25 * CSHIFT(X, 1, -1) + 0.75 * X")?;
/// let x = CmArray::new(&mut machine, 8, 8)?;
/// let r = CmArray::new(&mut machine, 8, 8)?;
/// x.fill(&mut machine, 4.0);
///
/// let binding = StencilBinding::new(&compiled, &r, &[&x], &[])?;
/// let mut plan = ExecutionPlan::build(
///     &mut machine,
///     &binding,
///     &ExecOptions::default(),
///     PlanLifetime::Persistent,
/// )?;
/// let first = plan.execute(&mut machine)?;
/// let again = plan.execute(&mut machine)?;
/// assert_eq!(r.get(&machine, 3, 3), 4.0);
/// assert_eq!(first, again); // deterministic, allocation-free replay
/// plan.release(&mut machine);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    strips: Vec<ResolvedStrip>,
    /// The strip schedule translated into lane-word addresses, when the
    /// plan runs on the lockstep engine (fast mode, no array aliasing).
    /// Empty otherwise. Lane addresses depend only on the view's range
    /// lengths and order — both rebind-invariant — so these never need
    /// rebasing.
    lane_strips: Vec<ResolvedStrip>,
    /// The kernel tier: each lane strip's compiled monomorphized form,
    /// parallel to `lane_strips` (`None` where the classifier fell back
    /// to the interpreter). Compiled at build, recompiled only when a
    /// rebind retranslates the strips; lane addresses are
    /// rebind-invariant, so a kept translation keeps its kernels too.
    lane_kernels: Vec<Option<StripKernels>>,
    /// Whether `execute` dispatches through `lane_kernels`. On by
    /// default; [`ExecutionPlan::set_kernel_tier`] turns it off after
    /// build (for interpreted-baseline benchmarking) without touching
    /// the plan-cache key.
    kernel_tier: bool,
    /// The node-memory ↔ lane-word map for the lockstep engine. `None`
    /// when the engine is scalar, the mode is cycle-accurate, or the
    /// current binding aliases arrays (then `execute` falls back to the
    /// scalar path). Rebind recomputes it in place.
    lane_view: Option<LaneView>,
    /// Whether `execute` runs the lane-resident steady state: the mirror
    /// below persists across executes, sources are refreshed and the
    /// halo exchange runs directly on it, and only writable ranges are
    /// scattered back. Requires a lane view, `opts.lane_resident`, and a
    /// successful translation of every exchange and interior copy.
    lane_resident: bool,
    /// The plan-owned persistent lane mirror. Shaped on first execute,
    /// recycled afterwards (zero steady-state allocations); contents are
    /// invalidated — not freed — by rebind via `lane_primed`.
    lane_mirror: LaneMirror,
    /// The halo exchange translated onto the mirror, one per source.
    /// Empty unless `lane_resident`.
    lane_exchanges: Vec<LaneExchangeProgram>,
    /// Per-source interior refresh on the mirror (the lane-domain
    /// `fill_interior`). Empty unless `lane_resident`.
    lane_interiors: Vec<RectCopy>,
    /// Whether the mirror currently holds the bound operands. Set by the
    /// priming gather of the first execute after build.
    lane_primed: bool,
    /// Whether a rebind left the mirror's read-only non-halo ranges
    /// (constants, literal pages, named coefficients) possibly stale.
    /// The next execute re-gathers just `lane_reprime` — halo contents
    /// are redefined by the interior refresh + exchange every iteration
    /// and the result range is fully overwritten by the kernels, so
    /// neither needs the full priming gather again.
    lane_stale: bool,
    /// The read-only non-halo ranges as single-run rectangle copies, for
    /// the partial re-prime above. Recomputed by rebind (bases move).
    lane_reprime: Vec<RectCopy>,
    /// Whether the mirror's source interiors and halos already hold this
    /// binding's current values. While true, steady-state executes skip
    /// the interior refresh and the halo exchange entirely: sources are
    /// read-only, the kernels write only the result range, and the
    /// scatter writes only writable node ranges, so the refreshed state
    /// is a fixed point. Cleared by rebinds that move a base and by host
    /// writes (detected via [`Machine::host_writes`]).
    lane_halos_current: bool,
    /// The [`Machine::host_writes`] generation the mirror was last
    /// synchronized at. A newer generation at execute time means the
    /// host mutated node memory since — the snapshot is re-read.
    lane_synced_writes: u64,
    /// The packed coefficient streams the kernel tier reads (the
    /// paper's §4 access-order coefficient layout), cached across
    /// executes. Invalidated when a rebind moves a coefficient base,
    /// when strips are retranslated, and when the host writes node
    /// memory; result/source-only rebinds keep it.
    lane_streams: CoeffStreams,
    halos: Vec<HaloBuffer>,
    exchanges: Vec<ExchangeProgram>,
    consts: Field,
    /// Literal coefficient pages, in `spec.coeffs` order (named entries
    /// skipped): the field plus the constant streamed through it.
    literal_pages: Vec<(Field, f32)>,
    /// Indices into `spec.coeffs` of the named coefficients, parallel to
    /// `coeffs` — the rebase slots a rebind must shift.
    named_slots: Vec<u16>,
    /// Total coefficient slots (`spec.coeffs.len()`): rebase deltas must
    /// cover literal slots too (always zero — their pages never move).
    coeff_slot_count: usize,
    result: CmArray,
    sources: Vec<CmArray>,
    coeffs: Vec<CmArray>,
    useful_flops: u64,
    call_overhead: u64,
    dispatch: u64,
    nodes: usize,
    opts: ExecOptions,
    fingerprint: u64,
    lifetime: PlanLifetime,
    /// Resolved half-strips per kernel width (index 0 → width 8, then
    /// 4, 2, 1) — the paper's strip-mine distribution, replayed verbatim
    /// by every execute and reported through `cmcc_obs`.
    strip_widths: [u64; 4],
}

impl ExecutionPlan {
    /// Plans every per-call decision for `binding` under `opts`.
    ///
    /// Allocates the halo buffers and constant pages (from the region
    /// `lifetime` selects), fills the constant pages, compiles one
    /// [`ExchangeProgram`] per source, and resolves the complete strip
    /// schedule to absolute operand addresses.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::SubgridTooSmall`] when the stencil's halo is deeper
    /// than the per-node subgrid, or [`RuntimeError::OutOfMemory`].
    pub fn build(
        machine: &mut Machine,
        binding: &StencilBinding<'_>,
        opts: &ExecOptions,
        lifetime: PlanLifetime,
    ) -> Result<Self, RuntimeError> {
        let _span = cmcc_obs::span(cmcc_obs::Phase::PlanBuild);
        cmcc_obs::add(cmcc_obs::Counter::PlanBuilds, 1);
        let compiled = binding.compiled();
        let spec = compiled.spec();
        let stencil = compiled.stencil();
        let result = *binding.result();
        let sub_rows = result.sub_rows();
        let sub_cols = result.sub_cols();
        let pad = stencil.borders().max_width() as usize;
        let persistent = lifetime == PlanLifetime::Persistent;

        let halos: Vec<HaloBuffer> = binding
            .sources()
            .iter()
            .map(|_| {
                if persistent {
                    HaloBuffer::new_persistent(machine, sub_rows, sub_cols, pad)
                } else {
                    HaloBuffer::new(machine, sub_rows, sub_cols, pad)
                }
            })
            .collect::<Result<_, _>>()?;

        let alloc = |machine: &mut Machine, len: usize| {
            if persistent {
                machine.alloc_field_persistent(len)
            } else {
                machine.alloc_field(len)
            }
        };

        // Constant pages: one word each of 1.0 and 0.0, plus one
        // `sub_cols`-wide page per literal coefficient (streamed with a
        // zero row stride).
        let consts = alloc(machine, 2)?;
        let mut pages: Vec<Option<(Field, f32)>> = Vec::with_capacity(spec.coeffs.len());
        for c in &spec.coeffs {
            match c {
                CoeffSpec::Literal(v) => pages.push(Some((alloc(machine, sub_cols)?, *v))),
                CoeffSpec::Named(_) => pages.push(None),
            }
        }
        let ones_addr = consts.addr(0);
        let zeros_addr = consts.addr(1);
        for (_, mem) in machine.par_nodes_mut() {
            mem.write(ones_addr, 1.0);
            mem.write(zeros_addr, 0.0);
            for &(page, value) in pages.iter().flatten() {
                mem.fill_field(page, value);
            }
        }

        // The halo exchange, compiled: neighbor lookups, copy addresses,
        // fill spans, and the cycle price are all fixed by (shape, grid,
        // boundary, primitive).
        let need_corners = if opts.skip_corners_when_possible {
            stencil.needs_corner_exchange()
        } else {
            pad > 0
        };
        let grid = machine.grid();
        let exchanges: Vec<ExchangeProgram> = halos
            .iter()
            .map(|halo| {
                ExchangeProgram::new(
                    halo,
                    grid,
                    machine.config(),
                    stencil.boundary(),
                    stencil.fill(),
                    need_corners,
                    opts.primitive,
                )
            })
            .collect();

        // Coefficient address tables, indexed like `MemRef::Coeff.array`.
        let mut named_iter = binding.coeffs().iter();
        let mut named_slots = Vec::with_capacity(binding.coeffs().len());
        let coeff_layouts: Vec<FieldLayout> = spec
            .coeffs
            .iter()
            .zip(&pages)
            .enumerate()
            .map(|(i, (c, page))| match c {
                CoeffSpec::Named(_) => {
                    named_slots.push(i as u16);
                    named_iter
                        .next()
                        .expect("coefficient count was validated")
                        .layout()
                }
                CoeffSpec::Literal(_) => {
                    let (page, _) = page.expect("literal page was allocated");
                    FieldLayout {
                        base: page.base(),
                        row_stride: 0,
                        row_offset: 0,
                        col_offset: 0,
                    }
                }
            })
            .collect();

        // The strip schedule, resolved: identical on every node (SIMD),
        // built once in the same order the rebuild-per-call path emits,
        // with every memory operand turned into an absolute address.
        let halves = if opts.half_strips {
            halfstrips(sub_rows)
        } else {
            full_strip(sub_rows)
        };
        let src_layouts: Vec<FieldLayout> = halos.iter().map(HaloBuffer::layout).collect();
        let mut strips = Vec::new();
        let mut strip_widths = [0u64; 4];
        for strip in plan_strips(compiled, sub_cols) {
            let sk = compiled
                .widest_kernel_for(strip.width)
                .expect("plan_strips used compiled widths");
            debug_assert_eq!(sk.width, strip.width);
            for half in &halves {
                let kernel = match half.walk {
                    Walk::North => &sk.north,
                    Walk::South => &sk.south,
                };
                let ctx = StripContext {
                    srcs: &src_layouts,
                    res: result.layout(),
                    coeffs: &coeff_layouts,
                    ones_addr,
                    zeros_addr,
                    start_row: half.start_row as i64,
                    lines: half.lines,
                    col0: strip.col0 as i64,
                };
                strips.push(ResolvedStrip::new(kernel, &ctx));
                if let Some(slot) = width_slot(strip.width) {
                    strip_widths[slot] += 1;
                }
            }
        }

        // Lane mapping for the lockstep engine: mirror exactly the
        // buffers the schedule touches, translate the schedule into lane
        // words. Either step can fail — aliased arrays overlap, or an
        // address walk escapes its buffer — and then the plan simply
        // keeps the scalar path.
        let literal_pages: Vec<(Field, f32)> = pages.into_iter().flatten().collect();
        let mut lane_view = None;
        let mut lane_strips = Vec::new();
        if opts.mode == ExecMode::Fast && opts.engine == ExecEngine::Lockstep {
            if let Some(view) = LaneView::new(&lane_ranges(
                &halos,
                consts,
                &literal_pages,
                binding.coeffs(),
                &result,
            )) {
                if let Some(translated) = strips
                    .iter()
                    .map(|s| s.translate(&view))
                    .collect::<Option<Vec<_>>>()
                {
                    lane_view = Some(view);
                    lane_strips = translated;
                }
            }
        }

        // The lane-resident steady state: translate the exchange and the
        // per-source interior refresh onto the mirror. Both always map
        // when the view mirrors whole halo buffers (the only views this
        // module builds); the fallbacks keep hand-constructed views safe.
        let mut lane_exchanges = Vec::new();
        let mut lane_interiors = Vec::new();
        let mut lane_resident = false;
        if opts.lane_resident {
            if let Some(view) = &lane_view {
                if let (Some(xs), Some(ins)) = (
                    exchanges
                        .iter()
                        .map(|p| LaneExchangeProgram::translate(p, view))
                        .collect::<Option<Vec<_>>>(),
                    lane_interior_copies(view, &halos, binding.sources()),
                ) {
                    lane_exchanges = xs;
                    lane_interiors = ins;
                    lane_resident = true;
                }
            }
        }

        // The kernel tier: classify every lane strip against the
        // monomorphized family. Strips the classifier rejects keep a
        // `None` and run interpreted — visible as `interpreted_steps`.
        let lane_kernels: Vec<Option<StripKernels>> =
            lane_strips.iter().map(StripKernels::compile).collect();

        let cfg = machine.config();
        Ok(ExecutionPlan {
            strips,
            lane_strips,
            lane_kernels,
            kernel_tier: true,
            lane_view,
            lane_resident,
            lane_mirror: LaneMirror::new(),
            lane_exchanges,
            lane_interiors,
            lane_primed: false,
            lane_stale: false,
            lane_reprime: Vec::new(),
            lane_halos_current: false,
            lane_synced_writes: 0,
            lane_streams: CoeffStreams::new(),
            halos,
            exchanges,
            consts,
            literal_pages,
            named_slots,
            coeff_slot_count: spec.coeffs.len(),
            result,
            sources: binding.sources().to_vec(),
            coeffs: binding.coeffs().to_vec(),
            useful_flops: stencil.useful_flops_per_point() * (result.rows() * result.cols()) as u64,
            call_overhead: u64::from(cfg.call_overhead_cycles),
            dispatch: u64::from(cfg.frontend_dispatch_cycles),
            nodes: machine.node_count(),
            opts: *opts,
            fingerprint: compiled.fingerprint(),
            lifetime,
            strip_widths,
        })
    }

    /// Runs one iteration: halo exchange, pre-resolved kernel execution,
    /// and the paper's accounting. Performs no field allocation and no
    /// schedule construction; the lane-resident path (lockstep engine,
    /// the default) additionally performs no host allocation and — once
    /// the source fixed point is established — no `NodeMemory` traffic
    /// beyond writing the result. Host writes to bound arrays between
    /// executes are detected via [`Machine::host_writes`] and re-read
    /// automatically.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Hazard`] on a pipeline hazard (a compiler bug).
    pub fn execute(&mut self, machine: &mut Machine) -> Result<Measurement, RuntimeError> {
        let _span = cmcc_obs::span(cmcc_obs::Phase::Execute);
        // Whether this execute is a steady-state iteration (no priming
        // or re-priming gather): the analytic `steady_state_copy_words`
        // prediction applies exactly, and debug builds cross-check it
        // below.
        // A host write since the last execute (array scatter/fill/set)
        // invalidates every cached snapshot of node memory: the packed
        // coefficient streams are repacked, and on the resident path
        // the source fixed point is re-read and the read-only non-halo
        // ranges are re-primed, as a rebind would.
        if self.lane_view.is_some() && self.lane_synced_writes != machine.host_writes() {
            self.lane_synced_writes = machine.host_writes();
            self.lane_streams.invalidate();
            self.lane_halos_current = false;
            if self.lane_primed {
                self.lane_stale = true;
            }
        }
        let steady_at_entry = !self.lane_resident || (self.lane_primed && !self.lane_stale);
        let mirror_base = MirrorWords::of(&self.lane_mirror);
        let mut interior_words = 0usize;
        let mut exchange_words = 0usize;
        let mut comm = 0;
        let run = if self.lane_resident {
            // Lane-resident steady state: operands live in the plan's
            // mirror between executes. Read-only ranges were gathered
            // when the mirror was primed; the source interiors and the
            // halo exchange are refreshed once and then treated as a
            // fixed point — sources are read-only, the kernels write
            // only the result range, and the scatter writes only
            // writable node ranges, so nothing the refresh produced can
            // change until a rebind moves a base or the host writes
            // node memory (tracked by `Machine::host_writes`). Only
            // writable ranges are scattered back each iteration.
            let view = self
                .lane_view
                .as_ref()
                .expect("resident plans are lane-mapped");
            self.lane_mirror
                .ensure(view.words(), self.nodes, self.opts.threads);
            let (_, mems) = machine.exec_parts_mut();
            if !self.lane_primed {
                self.lane_mirror.gather(view, mems);
                self.lane_primed = true;
                self.lane_stale = false;
            } else if self.lane_stale {
                // Partial re-prime after a rebind: only the read-only
                // non-halo ranges can hold stale contents (see the
                // `lane_stale` field). Far cheaper than a full gather —
                // this is what keeps plan-cache hits in steady state.
                for rect in &self.lane_reprime {
                    self.lane_mirror.gather_rect(mems, rect);
                }
                self.lane_stale = false;
            }
            for (interior, exchange) in self.lane_interiors.iter().zip(&self.lane_exchanges) {
                // The modeled NEWS cycles are charged every iteration —
                // the CM-2 exchanges every time. Skipping the host-side
                // copies is an emulator fixed-point optimization and
                // must not perturb the `Measurement`.
                comm += exchange.cycles();
                if !self.lane_halos_current {
                    self.lane_mirror.gather_rows(mems, interior);
                    exchange_words += exchange.words_moved();
                    let _ = exchange.run(&mut self.lane_mirror);
                }
            }
            self.lane_halos_current = true;
            let kernels: &[Option<StripKernels>] = if self.kernel_tier {
                &self.lane_kernels
            } else {
                &[]
            };
            let run = run_lockstep_groups_kernelized(
                &self.lane_strips,
                kernels,
                &mut self.lane_streams,
                self.lane_mirror.groups_mut(),
            );
            // In debug builds, prove the scatter honors the view's
            // read-only ranges (node 0 stands in for all — SIMD).
            #[cfg(debug_assertions)]
            let before: Vec<u32> = view
                .ranges()
                .iter()
                .filter(|r| !r.writable)
                .flat_map(|r| {
                    mems[0]
                        .slice(r.node_base, r.len)
                        .iter()
                        .map(|v| v.to_bits())
                })
                .collect();
            self.lane_mirror.scatter(view, mems);
            #[cfg(debug_assertions)]
            {
                let after: Vec<u32> = view
                    .ranges()
                    .iter()
                    .filter(|r| !r.writable)
                    .flat_map(|r| {
                        mems[0]
                            .slice(r.node_base, r.len)
                            .iter()
                            .map(|v| v.to_bits())
                    })
                    .collect();
                debug_assert_eq!(before, after, "scatter touched a read-only range");
            }
            run
        } else {
            for ((halo, program), src) in self.halos.iter().zip(&self.exchanges).zip(&self.sources)
            {
                interior_words += halo.fill_interior(machine, src);
                exchange_words += program.words_moved();
                comm += program.run(machine);
            }
            match &self.lane_view {
                // The lockstep engine without residency: every node
                // gathered into lane storage per execute, each resolved
                // step broadcast across all lanes at once.
                Some(view) => machine.run_resolved_lockstep_all_kernelized(
                    &self.lane_strips,
                    if self.kernel_tier {
                        &self.lane_kernels
                    } else {
                        &[]
                    },
                    &mut self.lane_streams,
                    view,
                    self.opts.threads,
                    &mut self.lane_mirror,
                ),
                None => {
                    machine.run_resolved_all(&self.strips, self.opts.mode, self.opts.threads)?
                }
            }
        };
        let d = MirrorWords::of(&self.lane_mirror).minus(&mirror_base);
        cmcc_obs::add(
            if self.lane_resident {
                cmcc_obs::Counter::LaneResidentRuns
            } else if self.lane_view.is_some() {
                cmcc_obs::Counter::LockstepRuns
            } else {
                cmcc_obs::Counter::ScalarRuns
            },
            1,
        );
        cmcc_obs::add(cmcc_obs::Counter::UsefulFlops, self.useful_flops);
        cmcc_obs::add(
            cmcc_obs::Counter::TotalFlops,
            2 * run.macs * self.nodes as u64,
        );
        cmcc_obs::add(cmcc_obs::Counter::GatherWords, d.gathered);
        cmcc_obs::add(cmcc_obs::Counter::ScatterWords, d.scattered);
        cmcc_obs::add(cmcc_obs::Counter::InteriorRefreshWords, d.row_gathered);
        cmcc_obs::add(cmcc_obs::Counter::MirrorAllocations, d.allocations);
        for (slot, &n) in self.strip_widths.iter().enumerate() {
            cmcc_obs::add(WIDTH_COUNTERS[slot], n);
        }

        // Debug builds prove the analytic prediction against observed
        // traffic: in steady state (no priming gather) the words this
        // execute moved are exactly `steady_state_copy_words`.
        if cfg!(debug_assertions) && steady_at_entry {
            let observed = (interior_words + exchange_words) as u64
                + d.row_gathered
                + d.gathered
                + d.scattered;
            assert_eq!(
                observed,
                self.steady_state_copy_words() as u64,
                "steady-state copy words diverged from the analytic prediction"
            );
            if self.lane_resident {
                assert_eq!(
                    d.lane_copied, exchange_words as u64,
                    "lane exchange moved a different word count than its program records"
                );
            }
        }

        // One front-end microcode dispatch per half-strip, exactly as the
        // rebuild path charges.
        let frontend = self.call_overhead + self.dispatch * self.strips.len() as u64;

        Ok(Measurement {
            useful_flops: self.useful_flops,
            cycles: CycleBreakdown {
                comm,
                compute: run.cycles,
                frontend,
            },
            nodes: self.nodes,
        })
    }

    /// Retargets the plan to different arrays of identical shape without
    /// rebuilding anything: source swaps are free (sources are read
    /// through the plan's own halo buffers each iteration) and
    /// result/coefficient swaps are a single in-place rebase of the
    /// resolved addresses.
    ///
    /// This is what makes ping-pong time stepping (`swap(cur, next)`) and
    /// volume sweeps reuse one plan.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WrongSourceCount`], [`RuntimeError::WrongCoeffCount`],
    /// or [`RuntimeError::ShapeMismatch`] when the new arrays do not match
    /// the plan's shapes.
    pub fn rebind(
        &mut self,
        result: &CmArray,
        sources: &[&CmArray],
        coeffs: &[&CmArray],
    ) -> Result<(), RuntimeError> {
        let _span = cmcc_obs::span(cmcc_obs::Phase::PlanRebind);
        cmcc_obs::add(cmcc_obs::Counter::PlanRebinds, 1);
        if sources.len() != self.sources.len() {
            return Err(RuntimeError::WrongSourceCount {
                expected: self.sources.len(),
                got: sources.len(),
            });
        }
        if coeffs.len() != self.coeffs.len() {
            return Err(RuntimeError::WrongCoeffCount {
                expected: self.coeffs.len(),
                got: coeffs.len(),
            });
        }
        let check = |what: &str, arr: &CmArray| -> Result<(), RuntimeError> {
            if !arr.same_shape(&self.result) {
                return Err(RuntimeError::ShapeMismatch {
                    what: format!(
                        "{what} is {}x{} but the plan was built for {}x{}",
                        arr.rows(),
                        arr.cols(),
                        self.result.rows(),
                        self.result.cols()
                    ),
                });
            }
            Ok(())
        };
        check("rebind result", result)?;
        for s in sources {
            check("rebind source", s)?;
        }
        for c in coeffs {
            check("rebind coefficient", c)?;
        }

        let result_delta = result.field().base() as i64 - self.result.field().base() as i64;
        let mut coeff_deltas = vec![0i64; self.coeff_slot_count];
        let mut any_coeff = false;
        for ((&slot, old), new) in self.named_slots.iter().zip(&self.coeffs).zip(coeffs) {
            let delta = new.field().base() as i64 - old.field().base() as i64;
            coeff_deltas[slot as usize] = delta;
            any_coeff |= delta != 0;
        }
        let any_source = self
            .sources
            .iter()
            .zip(sources)
            .any(|(old, new)| old.field().base() != new.field().base());
        if result_delta == 0 && !any_coeff && !any_source {
            // Identical binding (the plan-cache hit replaying the same
            // arrays): nothing to rebase, the lane view is unchanged,
            // and the resident mirror stays valid — host writes are
            // tracked separately by `execute`, so even the source
            // fixed point survives.
            return Ok(());
        }
        if result_delta != 0 || any_coeff {
            for strip in &mut self.strips {
                strip.rebase(result_delta, &coeff_deltas);
            }
        }
        if any_coeff {
            // The packed coefficient streams hold the *old* coefficient
            // values; result/source-only rebinds keep them (the stream
            // is a pure function of the coefficient bindings).
            self.lane_streams.invalidate();
        }

        self.result = *result;
        self.sources.clear();
        self.sources.extend(sources.iter().map(|s| **s));
        self.coeffs.clear();
        self.coeffs.extend(coeffs.iter().map(|c| **c));

        // Recompute the lane view against the new arrays. The ranges keep
        // their order and lengths (shapes were just validated), so lane
        // addresses are unchanged and the translated strips stay valid;
        // only the gather/scatter bases move. A rebind can also turn the
        // lockstep path off (the new binding aliases arrays) or back on.
        if self.opts.mode == ExecMode::Fast && self.opts.engine == ExecEngine::Lockstep {
            self.lane_view = None;
            if let Some(view) = LaneView::new(&lane_ranges(
                &self.halos,
                self.consts,
                &self.literal_pages,
                &self.coeffs,
                &self.result,
            )) {
                if self.lane_strips.len() == self.strips.len() {
                    // Lane addresses are rebind-invariant, so the kept
                    // translation keeps its compiled kernels too.
                    self.lane_view = Some(view);
                } else if let Some(translated) = self
                    .strips
                    .iter()
                    .map(|s| s.translate(&view))
                    .collect::<Option<Vec<_>>>()
                {
                    self.lane_kernels = translated.iter().map(StripKernels::compile).collect();
                    self.lane_strips = translated;
                    self.lane_streams.invalidate();
                    self.lane_view = Some(view);
                }
            }
        }

        // Mark the resident mirror stale: lane *addresses* survive a
        // rebind (range lengths and order are unchanged), and of the
        // *contents* only the read-only non-halo ranges can matter — the
        // halo words are redefined by the next interior refresh +
        // exchange (`lane_halos_current` is cleared below) and the
        // result is fully overwritten — so the next execute re-primes
        // just those (see `lane_stale`), keeping
        // plan-cache hits in steady state. The mirror's buffers are
        // kept; re-priming allocates nothing. Interior copies read the
        // new source bases; the exchange programs depend only on the
        // halo buffers, which never move, but retranslating is cheap and
        // keeps one code path.
        self.lane_stale = true;
        self.lane_halos_current = false;
        self.lane_resident = false;
        self.lane_exchanges.clear();
        self.lane_interiors.clear();
        self.lane_reprime.clear();
        if self.opts.lane_resident {
            if let Some(view) = &self.lane_view {
                if let (Some(xs), Some(ins)) = (
                    self.exchanges
                        .iter()
                        .map(|p| LaneExchangeProgram::translate(p, view))
                        .collect::<Option<Vec<_>>>(),
                    lane_interior_copies(view, &self.halos, &self.sources),
                ) {
                    self.lane_exchanges = xs;
                    self.lane_interiors = ins;
                    self.lane_resident = true;
                    self.lane_reprime = reprime_copies(view, self.halos.len());
                }
            }
        }
        Ok(())
    }

    /// Returns the plan's persistent fields to the arena.
    ///
    /// Scoped plans skip this — their fields fall away with the caller's
    /// [`Machine::release_to`].
    ///
    /// # Panics
    ///
    /// Panics if the plan was built with [`PlanLifetime::Scoped`].
    pub fn release(self, machine: &mut Machine) {
        assert_eq!(
            self.lifetime,
            PlanLifetime::Persistent,
            "scoped plans are reclaimed by release_to, not release"
        );
        for &(page, _) in self.literal_pages.iter().rev() {
            machine.free_field_persistent(page);
        }
        machine.free_field_persistent(self.consts);
        for halo in self.halos.into_iter().rev() {
            halo.release(machine);
        }
    }

    /// The [`CompiledStencil::fingerprint`] this plan was built from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Global rows of the bound arrays.
    pub fn rows(&self) -> usize {
        self.result.rows()
    }

    /// Global columns of the bound arrays.
    pub fn cols(&self) -> usize {
        self.result.cols()
    }

    /// The execution options the plan was built under.
    pub fn options(&self) -> &ExecOptions {
        &self.opts
    }

    /// Where the plan's fields live.
    pub fn lifetime(&self) -> PlanLifetime {
        self.lifetime
    }

    /// Pre-resolved half-strip runs per iteration (front-end dispatches).
    pub fn dispatches(&self) -> usize {
        self.strips.len()
    }

    /// Whether `execute` currently runs the lockstep broadcast engine
    /// (fast mode, lockstep engine selected, current binding lane-mapped
    /// without aliasing). False means the scalar fallback.
    pub fn uses_lockstep(&self) -> bool {
        self.lane_view.is_some()
    }

    /// Whether `execute` currently runs the lane-resident steady state:
    /// the mirror persists across executes, sources and the halo exchange
    /// are applied directly to lane storage, and only writable ranges are
    /// scattered back. False means per-execute gather/scatter (or the
    /// scalar fallback when [`Self::uses_lockstep`] is also false).
    pub fn uses_lane_resident(&self) -> bool {
        self.lane_resident
    }

    /// Turns the kernel tier on or off for subsequent executes. On by
    /// default. A post-build toggle only — results are bit-identical
    /// either way, so it is not an [`ExecOptions`] field and does not
    /// enter the plan-cache key; its one real use is timing the
    /// interpreted lockstep baseline (`repro_simd`).
    pub fn set_kernel_tier(&mut self, on: bool) {
        self.kernel_tier = on;
    }

    /// How many of the plan's lane strips compiled against the kernel
    /// family (the rest run interpreted). Zero when the plan is not
    /// lane-mapped or the tier is off.
    pub fn kernelized_strips(&self) -> usize {
        if !self.kernel_tier {
            return 0;
        }
        self.lane_kernels.iter().flatten().count()
    }

    /// Lane-mirror buffer allocations performed so far. Steady state
    /// (repeated `execute` without rebinding a different shape) must not
    /// move this counter; benches and tests assert on the delta.
    pub fn lane_mirror_allocations(&self) -> u64 {
        self.lane_mirror.allocations()
    }

    /// Machine-total words copied per steady-state `execute` under the
    /// current engine. Lane-resident plans reach a fixed point: after
    /// the first refresh the source interiors and halos in the mirror
    /// cannot change between executes (sources are read-only and the
    /// kernels write only the result range), so a steady iteration
    /// copies nothing but the writable-range scatter. The other engines
    /// refresh per iteration: interior source copy + halo-exchange
    /// moves, plus — on the non-resident lockstep engine — the full
    /// mirror gather/scatter. Computed from the plan's structure, so it
    /// cannot drift from what `execute` actually does. Fill words
    /// (border zeroing) are excluded: they are stores, not copies.
    pub fn steady_state_copy_words(&self) -> usize {
        let scatter = |view: &LaneView| {
            view.ranges()
                .iter()
                .filter(|r| r.writable)
                .map(|r| r.len)
                .sum::<usize>()
                * self.nodes
        };
        if self.lane_resident {
            let view = self.lane_view.as_ref().expect("resident plans are mapped");
            return scatter(view);
        }
        let interior: usize = self
            .sources
            .iter()
            .map(|s| s.sub_rows() * s.sub_cols())
            .sum::<usize>()
            * self.nodes;
        let exchange: usize = self
            .exchanges
            .iter()
            .map(ExchangeProgram::words_moved)
            .sum();
        let mirror = match &self.lane_view {
            Some(view) => view.words() * self.nodes + scatter(view),
            None => 0,
        };
        interior + exchange + mirror
    }

    /// Words of node memory the plan's halo buffers and constant pages
    /// occupy.
    pub fn words(&self) -> usize {
        self.halos.iter().map(HaloBuffer::words).sum::<usize>()
            + self.consts.len()
            + self
                .literal_pages
                .iter()
                .map(|(p, _)| p.len())
                .sum::<usize>()
    }
}

/// `cmcc_obs` strip counters in `strip_widths` slot order (8, 4, 2, 1).
const WIDTH_COUNTERS: [cmcc_obs::Counter; 4] = [
    cmcc_obs::Counter::StripsWidth8,
    cmcc_obs::Counter::StripsWidth4,
    cmcc_obs::Counter::StripsWidth2,
    cmcc_obs::Counter::StripsWidth1,
];

/// Maps a kernel width to its `strip_widths` slot. The compiler only
/// emits the paper's widths (8, 4, 2, 1); anything else is uncounted.
fn width_slot(width: usize) -> Option<usize> {
    match width {
        8 => Some(0),
        4 => Some(1),
        2 => Some(2),
        1 => Some(3),
        _ => None,
    }
}

/// Snapshot of [`LaneMirror`]'s monotonic word counters, differenced
/// around one execute to attribute that execute's mirror traffic.
#[derive(Clone, Copy)]
struct MirrorWords {
    gathered: u64,
    row_gathered: u64,
    scattered: u64,
    lane_copied: u64,
    allocations: u64,
}

impl MirrorWords {
    fn of(mirror: &LaneMirror) -> Self {
        MirrorWords {
            gathered: mirror.gathered_words(),
            row_gathered: mirror.row_gathered_words(),
            scattered: mirror.scattered_words(),
            lane_copied: mirror.lane_copied_words(),
            allocations: mirror.allocations(),
        }
    }

    fn minus(&self, base: &MirrorWords) -> MirrorWords {
        MirrorWords {
            gathered: self.gathered - base.gathered,
            row_gathered: self.row_gathered - base.row_gathered,
            scattered: self.scattered - base.scattered,
            lane_copied: self.lane_copied - base.lane_copied,
            allocations: self.allocations - base.allocations,
        }
    }
}

/// The node-memory ranges a plan's schedule can touch, in the fixed
/// order the lane view mirrors them: halo buffers, the constant pair,
/// literal coefficient pages, named coefficient arrays (all read-only),
/// then the result array (the one range scattered back). The order and
/// lengths are rebind-invariant, which is what keeps lane-translated
/// strips valid across rebinds.
fn lane_ranges(
    halos: &[HaloBuffer],
    consts: Field,
    literal_pages: &[(Field, f32)],
    coeffs: &[CmArray],
    result: &CmArray,
) -> Vec<(usize, usize, bool)> {
    let mut ranges = Vec::new();
    for halo in halos {
        let f = halo.field();
        ranges.push((f.base(), f.len(), false));
    }
    ranges.push((consts.base(), consts.len(), false));
    for &(page, _) in literal_pages {
        ranges.push((page.base(), page.len(), false));
    }
    for c in coeffs {
        let f = c.field();
        ranges.push((f.base(), f.len(), false));
    }
    let f = result.field();
    ranges.push((f.base(), f.len(), true));
    ranges
}

/// Translates each source's interior refresh onto the lane mirror: one
/// [`RectCopy`] per source rewrites the mirror rows holding its halo
/// buffer's interior from the (mirror-external) source array every
/// iteration — the lane-resident `fill_interior`. Returns `None` when
/// any halo buffer is not wholly inside one viewed range (then the plan
/// keeps the gather/scatter steady state).
/// The read-only ranges of `view` past the first `halo_count` (constant
/// pair, literal pages, named coefficient arrays), each as a single-run
/// [`RectCopy`] — what a post-rebind partial re-prime must re-gather.
/// Halo ranges are excluded: their observable words are redefined by the
/// interior refresh and exchange every iteration.
fn reprime_copies(view: &LaneView, halo_count: usize) -> Vec<RectCopy> {
    view.ranges()
        .iter()
        .enumerate()
        .filter(|(i, range)| *i >= halo_count && !range.writable)
        .map(|(_, range)| RectCopy {
            src0: range.node_base,
            src_stride: 0,
            dst0: range.lane_base,
            dst_stride: 0,
            rows: 1,
            cols: range.len,
        })
        .collect()
}

fn lane_interior_copies(
    view: &LaneView,
    halos: &[HaloBuffer],
    sources: &[CmArray],
) -> Option<Vec<RectCopy>> {
    halos
        .iter()
        .zip(sources)
        .map(|(halo, src)| {
            let hl = halo.layout();
            let sl = src.layout();
            let f = halo.field();
            let (lane0, range) = view.locate(f.base())?;
            if f.base() + f.len() > range.node_base + range.len {
                return None;
            }
            Some(RectCopy {
                src0: sl.addr(0, 0),
                src_stride: sl.row_stride,
                dst0: lane0 + (hl.addr(0, 0) - f.base()),
                dst_stride: hl.row_stride,
                rows: src.sub_rows(),
                cols: src.sub_cols(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolve::convolve;
    use cmcc_cm2::config::MachineConfig;
    use cmcc_core::compiler::Compiler;
    use cmcc_core::patterns::PaperPattern;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny_4()).unwrap()
    }

    fn compile(m: &Machine, text: &str) -> CompiledStencil {
        Compiler::new(m.config().clone())
            .compile_assignment(text)
            .unwrap()
    }

    #[test]
    fn plan_matches_fresh_convolve_bit_for_bit() {
        let mut m = machine();
        let compiled = compile(&m, &PaperPattern::Cross5.fortran());
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill_with(&mut m, |r, c| ((r * 13 + c * 7) % 11) as f32 * 0.5 - 2.0);
        let coeffs: Vec<CmArray> = (0..5)
            .map(|i| {
                let a = CmArray::new(&mut m, 8, 8).unwrap();
                a.fill(&mut m, 0.11 * (i + 1) as f32);
                a
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r_fresh = CmArray::new(&mut m, 8, 8).unwrap();
        let r_plan = CmArray::new(&mut m, 8, 8).unwrap();
        let opts = ExecOptions::default();

        let fresh = convolve(&mut m, &compiled, &r_fresh, &x, &refs, &opts).unwrap();

        let binding = StencilBinding::new(&compiled, &r_plan, &[&x], &refs).unwrap();
        let mut plan =
            ExecutionPlan::build(&mut m, &binding, &opts, PlanLifetime::Persistent).unwrap();
        for _ in 0..3 {
            let planned = plan.execute(&mut m).unwrap();
            assert_eq!(planned, fresh);
        }
        let want = r_fresh.gather(&m);
        let got = r_plan.gather(&m);
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        plan.release(&mut m);
    }

    #[test]
    fn steady_state_execute_performs_no_allocations() {
        let mut m = machine();
        let compiled = compile(&m, "R = 0.25 * CSHIFT(X, 1, -1) + 0.75 * X");
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill(&mut m, 1.0);
        let binding = StencilBinding::new(&compiled, &r, &[&x], &[]).unwrap();
        let mut plan = ExecutionPlan::build(
            &mut m,
            &binding,
            &ExecOptions::fast(),
            PlanLifetime::Persistent,
        )
        .unwrap();
        let allocs = m.alloc_count();
        let mark = m.alloc_mark();
        for _ in 0..10 {
            plan.execute(&mut m).unwrap();
        }
        assert_eq!(m.alloc_count(), allocs, "execute must not allocate");
        assert_eq!(m.alloc_mark(), mark, "execute must not move the bump mark");
        plan.release(&mut m);
    }

    #[test]
    fn steady_state_execute_reuses_the_lane_mirror() {
        let mut m = machine();
        let compiled = compile(&m, &PaperPattern::Square9.fortran());
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill_with(&mut m, |r, c| ((r * 7 + c) % 13) as f32 * 0.5);
        let coeffs: Vec<CmArray> = (0..9)
            .map(|i| {
                let a = CmArray::new(&mut m, 8, 8).unwrap();
                a.fill(&mut m, (i as f32 - 4.0) * 0.125);
                a
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let binding = StencilBinding::new(&compiled, &r, &[&x], &refs).unwrap();
        let mut plan = ExecutionPlan::build(
            &mut m,
            &binding,
            &ExecOptions::fast(),
            PlanLifetime::Persistent,
        )
        .unwrap();
        assert!(plan.uses_lane_resident(), "a clean binding stays resident");

        // The first execute shapes the mirror; every later one recycles it.
        let first = plan.execute(&mut m).unwrap();
        let mirror_allocs = plan.lane_mirror_allocations();
        assert!(mirror_allocs > 0, "the priming execute shapes the mirror");
        let node_allocs = m.alloc_count();
        for _ in 0..10 {
            let again = plan.execute(&mut m).unwrap();
            assert_eq!(again, first);
        }
        assert_eq!(
            plan.lane_mirror_allocations(),
            mirror_allocs,
            "steady state must not grow or reshape the lane mirror"
        );
        assert_eq!(m.alloc_count(), node_allocs, "execute must not allocate");

        // Resident steady state skips the full gather, so it copies
        // strictly fewer words than the same plan without residency.
        let binding2 = StencilBinding::new(&compiled, &r, &[&x], &refs).unwrap();
        let mut baseline = ExecutionPlan::build(
            &mut m,
            &binding2,
            &ExecOptions::fast().with_lane_resident(false),
            PlanLifetime::Persistent,
        )
        .unwrap();
        assert!(!baseline.uses_lane_resident());
        assert_eq!(baseline.execute(&mut m).unwrap(), first);
        assert!(plan.steady_state_copy_words() < baseline.steady_state_copy_words());
        baseline.release(&mut m);
        plan.release(&mut m);
    }

    #[test]
    fn release_returns_every_persistent_word() {
        let mut m = machine();
        let compiled = compile(&m, &PaperPattern::Square9.fortran());
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let coeffs: Vec<CmArray> = (0..9)
            .map(|_| CmArray::new(&mut m, 8, 8).unwrap())
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let before = m.persistent_used();
        let binding = StencilBinding::new(&compiled, &r, &[&x], &refs).unwrap();
        let plan = ExecutionPlan::build(
            &mut m,
            &binding,
            &ExecOptions::default(),
            PlanLifetime::Persistent,
        )
        .unwrap();
        assert!(m.persistent_used() > before);
        plan.release(&mut m);
        assert_eq!(m.persistent_used(), before);
    }

    #[test]
    fn rebind_retargets_result_source_and_coeffs() {
        let mut m = machine();
        let compiled = compile(&m, "R = C * CSHIFT(X, 2, 1) + 0.5 * X");
        let mk = |m: &mut Machine, seed: usize| {
            let a = CmArray::new(m, 8, 8).unwrap();
            a.fill_with(m, move |r, c| ((r * 5 + c * 3 + seed) % 17) as f32 * 0.25);
            a
        };
        let x1 = mk(&mut m, 1);
        let c1 = mk(&mut m, 2);
        let x2 = mk(&mut m, 3);
        let c2 = mk(&mut m, 4);
        let r1 = CmArray::new(&mut m, 8, 8).unwrap();
        let r2 = CmArray::new(&mut m, 8, 8).unwrap();
        let opts = ExecOptions::default();

        let binding = StencilBinding::new(&compiled, &r1, &[&x1], &[&c1]).unwrap();
        let mut plan =
            ExecutionPlan::build(&mut m, &binding, &opts, PlanLifetime::Persistent).unwrap();
        plan.execute(&mut m).unwrap();
        plan.rebind(&r2, &[&x2], &[&c2]).unwrap();
        let rebound = plan.execute(&mut m).unwrap();

        // A fresh convolve on the second argument set must agree exactly.
        let r_fresh = CmArray::new(&mut m, 8, 8).unwrap();
        let fresh = convolve(&mut m, &compiled, &r_fresh, &x2, &[&c2], &opts).unwrap();
        assert_eq!(rebound, fresh);
        assert_eq!(r2.gather(&m), r_fresh.gather(&m));

        // And rebinding back retargets cleanly (round trip).
        plan.rebind(&r1, &[&x1], &[&c1]).unwrap();
        plan.execute(&mut m).unwrap();
        let r_fresh1 = CmArray::new(&mut m, 8, 8).unwrap();
        convolve(&mut m, &compiled, &r_fresh1, &x1, &[&c1], &opts).unwrap();
        assert_eq!(r1.gather(&m), r_fresh1.gather(&m));
        plan.release(&mut m);
    }

    #[test]
    fn rebind_rejects_mismatched_shapes_and_counts() {
        let mut m = machine();
        let compiled = compile(&m, "R = C * X");
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let c = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let wrong = CmArray::new(&mut m, 8, 12).unwrap();
        let binding = StencilBinding::new(&compiled, &r, &[&x], &[&c]).unwrap();
        let mut plan = ExecutionPlan::build(
            &mut m,
            &binding,
            &ExecOptions::default(),
            PlanLifetime::Persistent,
        )
        .unwrap();
        assert!(matches!(
            plan.rebind(&wrong, &[&x], &[&c]),
            Err(RuntimeError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            plan.rebind(&r, &[&x], &[]),
            Err(RuntimeError::WrongCoeffCount { .. })
        ));
        assert!(matches!(
            plan.rebind(&r, &[], &[&c]),
            Err(RuntimeError::WrongSourceCount { .. })
        ));
        plan.release(&mut m);
    }

    #[test]
    fn lockstep_plan_matches_scalar_plan_bit_for_bit() {
        let mut m = machine();
        let compiled = compile(&m, &PaperPattern::Square9.fortran());
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill_with(&mut m, |r, c| ((r * 13 + c * 7) % 11) as f32 * 0.5 - 2.0);
        let coeffs: Vec<CmArray> = (0..9)
            .map(|i| {
                let a = CmArray::new(&mut m, 8, 8).unwrap();
                a.fill_with(&mut m, move |r, c| {
                    ((r * 3 + c * 5 + i) % 7) as f32 * 0.125 - 0.25
                });
                a
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r_scalar = CmArray::new(&mut m, 8, 8).unwrap();
        let r_lock = CmArray::new(&mut m, 8, 8).unwrap();

        let scalar_opts = ExecOptions::fast().with_engine(ExecEngine::Scalar);
        let b = StencilBinding::new(&compiled, &r_scalar, &[&x], &refs).unwrap();
        let mut scalar_plan =
            ExecutionPlan::build(&mut m, &b, &scalar_opts, PlanLifetime::Persistent).unwrap();
        assert!(!scalar_plan.uses_lockstep());
        let scalar_meas = scalar_plan.execute(&mut m).unwrap();

        let lock_opts = ExecOptions::fast().with_engine(ExecEngine::Lockstep);
        let b = StencilBinding::new(&compiled, &r_lock, &[&x], &refs).unwrap();
        let mut lock_plan =
            ExecutionPlan::build(&mut m, &b, &lock_opts, PlanLifetime::Persistent).unwrap();
        assert!(lock_plan.uses_lockstep());
        let lock_meas = lock_plan.execute(&mut m).unwrap();

        assert_eq!(scalar_meas, lock_meas);
        let want = r_scalar.gather(&m);
        let got = r_lock.gather(&m);
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        scalar_plan.release(&mut m);
        lock_plan.release(&mut m);
    }

    #[test]
    fn aliased_binding_falls_back_to_scalar() {
        let mut m = machine();
        let compiled = compile(&m, "R = C * X");
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill(&mut m, 2.0);
        let c = CmArray::new(&mut m, 8, 8).unwrap();
        c.fill(&mut m, 3.0);
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let opts = ExecOptions::fast();
        assert_eq!(opts.engine, ExecEngine::Lockstep);

        // Result aliased to the coefficient array: the lane mirror cannot
        // represent one buffer in two roles, so the plan must fall back —
        // and still compute the correct result through the scalar path.
        let b = StencilBinding::new(&compiled, &c, &[&x], &[&c]).unwrap();
        let mut plan = ExecutionPlan::build(&mut m, &b, &opts, PlanLifetime::Persistent).unwrap();
        assert!(!plan.uses_lockstep());
        plan.execute(&mut m).unwrap();
        assert_eq!(c.get(&m, 3, 3), 6.0);
        plan.release(&mut m);

        // A clean binding keeps the lockstep engine.
        let b = StencilBinding::new(&compiled, &r, &[&x], &[&c]).unwrap();
        let plan = ExecutionPlan::build(&mut m, &b, &opts, PlanLifetime::Persistent).unwrap();
        assert!(plan.uses_lockstep());
        plan.release(&mut m);
    }

    #[test]
    fn rebind_keeps_lockstep_matching_fresh_convolve() {
        let mut m = machine();
        let compiled = compile(&m, "R = C * CSHIFT(X, 2, 1) + 0.5 * X");
        let mk = |m: &mut Machine, seed: usize| {
            let a = CmArray::new(m, 8, 8).unwrap();
            a.fill_with(m, move |r, c| ((r * 5 + c * 3 + seed) % 17) as f32 * 0.25);
            a
        };
        let x1 = mk(&mut m, 1);
        let c1 = mk(&mut m, 2);
        let x2 = mk(&mut m, 3);
        let c2 = mk(&mut m, 4);
        let r1 = CmArray::new(&mut m, 8, 8).unwrap();
        let r2 = CmArray::new(&mut m, 8, 8).unwrap();
        let opts = ExecOptions::fast();

        let binding = StencilBinding::new(&compiled, &r1, &[&x1], &[&c1]).unwrap();
        let mut plan =
            ExecutionPlan::build(&mut m, &binding, &opts, PlanLifetime::Persistent).unwrap();
        assert!(plan.uses_lockstep());
        plan.execute(&mut m).unwrap();
        plan.rebind(&r2, &[&x2], &[&c2]).unwrap();
        assert!(plan.uses_lockstep(), "rebind must keep the lane view");
        plan.execute(&mut m).unwrap();

        // Rebinding onto an aliased pair turns the engine off…
        plan.rebind(&c1, &[&x1], &[&c1]).unwrap();
        assert!(!plan.uses_lockstep());
        // …and a clean rebind turns it back on.
        plan.rebind(&r1, &[&x1], &[&c1]).unwrap();
        assert!(plan.uses_lockstep());
        plan.execute(&mut m).unwrap();

        let r_fresh = CmArray::new(&mut m, 8, 8).unwrap();
        convolve(
            &mut m,
            &compiled,
            &r_fresh,
            &x2,
            &[&c2],
            &ExecOptions::fast().with_engine(ExecEngine::Scalar),
        )
        .unwrap();
        assert_eq!(r2.gather(&m), r_fresh.gather(&m));
        let r_fresh1 = CmArray::new(&mut m, 8, 8).unwrap();
        convolve(
            &mut m,
            &compiled,
            &r_fresh1,
            &x1,
            &[&c1],
            &ExecOptions::fast().with_engine(ExecEngine::Scalar),
        )
        .unwrap();
        assert_eq!(r1.gather(&m), r_fresh1.gather(&m));
        plan.release(&mut m);
    }

    #[test]
    fn binding_validation_matches_convolve() {
        let mut m = machine();
        let compiled = compile(&m, "R = C1 * X + C2 * CSHIFT(X, 1, 1)");
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        assert!(matches!(
            StencilBinding::new(&compiled, &r, &[&x], &[]),
            Err(RuntimeError::WrongCoeffCount {
                expected: 2,
                got: 0
            })
        ));
        assert!(matches!(
            StencilBinding::new(&compiled, &r, &[], &[]),
            Err(RuntimeError::WrongSourceCount { .. })
        ));
    }
}
