//! Compile once, run many: the bind → plan → execute pipeline.
//!
//! The paper's system compiles a stencil statement once and then calls it
//! "many times — typically thousands" (§1). The original [`crate::convolve()`]
//! entry point repeated every run-time decision on each call: allocating
//! halo storage, materializing constant pages, computing exchange
//! addresses, and rebuilding the strip schedule. This module splits those
//! out:
//!
//! 1. **compile** — [`cmcc_core::Compiler`] produces a
//!    [`CompiledStencil`] (unchanged), now carrying a stable
//!    [`CompiledStencil::fingerprint`];
//! 2. **bind** — [`StencilBinding`] attaches result/source/coefficient
//!    arrays to the compiled stencil and validates shapes and counts
//!    once;
//! 3. **plan** — [`ExecutionPlan::build`] allocates halo buffers and
//!    constant pages, compiles the halo exchange into an
//!    [`ExchangeProgram`] per source, and pre-resolves the entire strip
//!    schedule into [`ResolvedStrip`]s (every kernel operand address
//!    computed ahead of time);
//! 4. **execute** — [`ExecutionPlan::execute`] performs only the halo
//!    exchange, the pre-resolved kernel runs, and the paper's cycle
//!    accounting. No allocation, no address computation, no schedule
//!    construction.
//!
//! Results and [`Measurement`]s are bit-identical to the rebuild-per-call
//! path — the resolved executor mirrors the legacy interpreter step for
//! step — so plans are purely a host-side performance feature, exactly
//! like the paper's distinction between compile-time and run-time work.

use crate::array::CmArray;
use crate::convolve::ExecOptions;
use crate::error::RuntimeError;
use crate::halo::{ExchangeProgram, FillProgram, HaloBuffer, LaneExchangeProgram, LaneFillProgram};
use crate::strips::{full_strip, halfstrips, plan_strips};
use cmcc_cm2::exec::{ExecEngine, ExecMode, FieldLayout, ResolvedStrip, StripContext, StripRun};
use cmcc_cm2::kernels::{run_lockstep_groups_kernelized, CoeffStreams, StripKernels};
use cmcc_cm2::lane::{LaneMirror, LaneView, RectCopy, RegionStage};
use cmcc_cm2::machine::Machine;
use cmcc_cm2::memory::{Field, NodeMemory};
use cmcc_cm2::timing::{CycleBreakdown, Measurement};
use cmcc_core::compiler::CompiledStencil;
use cmcc_core::recognize::CoeffSpec;
use cmcc_core::regalloc::Walk;
use std::sync::Arc;

/// A compiled stencil bound to concrete distributed arrays, with all
/// shape and count validation done up front (the front end's job on the
/// real machine).
///
/// Binding is cheap — [`CmArray`] handles are `Copy` — and performs no
/// machine allocation; it exists so that validation errors surface before
/// any planning work starts.
#[derive(Debug, Clone)]
pub struct StencilBinding<'a> {
    compiled: &'a CompiledStencil,
    result: CmArray,
    sources: Vec<CmArray>,
    coeffs: Vec<CmArray>,
}

impl<'a> StencilBinding<'a> {
    /// Validates and records the argument arrays for one stencil call.
    ///
    /// `sources` supplies one array per entry of
    /// [`cmcc_core::recognize::StencilSpec::sources`]; `coeffs` one array
    /// per *named* coefficient, in [`StencilSpec::coeffs`] order (literal
    /// coefficients are materialized by the plan).
    ///
    /// [`StencilSpec::coeffs`]: cmcc_core::recognize::StencilSpec::coeffs
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WrongSourceCount`], [`RuntimeError::WrongCoeffCount`],
    /// or [`RuntimeError::ShapeMismatch`] when the argument lists do not
    /// match the statement.
    pub fn new(
        compiled: &'a CompiledStencil,
        result: &CmArray,
        sources: &[&CmArray],
        coeffs: &[&CmArray],
    ) -> Result<Self, RuntimeError> {
        let spec = compiled.spec();
        let stencil = compiled.stencil();

        let expected_sources = stencil.source_count().max(1);
        if sources.len() != expected_sources {
            return Err(RuntimeError::WrongSourceCount {
                expected: expected_sources,
                got: sources.len(),
            });
        }
        for (i, s) in sources.iter().enumerate() {
            if !result.same_shape(s) {
                return Err(RuntimeError::ShapeMismatch {
                    what: format!(
                        "result is {}x{} but source {i} is {}x{}",
                        result.rows(),
                        result.cols(),
                        s.rows(),
                        s.cols()
                    ),
                });
            }
        }
        let named: Vec<&str> = spec
            .coeffs
            .iter()
            .filter_map(|c| match c {
                CoeffSpec::Named(n) => Some(n.as_str()),
                CoeffSpec::Literal(_) => None,
            })
            .collect();
        if coeffs.len() != named.len() {
            return Err(RuntimeError::WrongCoeffCount {
                expected: named.len(),
                got: coeffs.len(),
            });
        }
        for (arr, name) in coeffs.iter().zip(&named) {
            if !arr.same_shape(result) {
                return Err(RuntimeError::ShapeMismatch {
                    what: format!(
                        "coefficient `{name}` is {}x{}, expected {}x{}",
                        arr.rows(),
                        arr.cols(),
                        result.rows(),
                        result.cols()
                    ),
                });
            }
        }

        Ok(StencilBinding {
            compiled,
            result: *result,
            sources: sources.iter().map(|s| **s).collect(),
            coeffs: coeffs.iter().map(|c| **c).collect(),
        })
    }

    /// The compiled stencil this binding attaches arrays to.
    pub fn compiled(&self) -> &'a CompiledStencil {
        self.compiled
    }

    /// The bound result array.
    pub fn result(&self) -> &CmArray {
        &self.result
    }

    /// The bound source arrays.
    pub fn sources(&self) -> &[CmArray] {
        &self.sources
    }

    /// The bound named-coefficient arrays.
    pub fn coeffs(&self) -> &[CmArray] {
        &self.coeffs
    }
}

/// Where a plan's node-memory fields live, which decides how they are
/// reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanLifetime {
    /// Fields come from the bump region and are reclaimed by the caller's
    /// [`Machine::release_to`] — the one-shot [`crate::convolve()`] path.
    Scoped,
    /// Fields come from the persistent arena and survive across calls
    /// until [`ExecutionPlan::release`] — the cached-plan path.
    Persistent,
}

/// The immutable half of an execution plan: everything plan-build
/// computes that does **not** depend on which concrete arrays a tenant
/// binds — the resolved strip schedule (against the build-time binding,
/// the rebase baseline), the lane translation and kernel classification,
/// the compiled halo-exchange programs, and the plan-owned node-memory
/// fields (halo buffers, constant and literal pages).
///
/// A `CompiledPlan` is shared between any number of [`PlanInstance`]s
/// through an [`Arc`]: the session plan cache hands every tenant the same
/// artifact, and evicting it from the cache cannot invalidate in-flight
/// instances — the `Arc` keeps it alive until the last instance drops.
/// Its node-memory fields are returned to the persistent arena by
/// [`CompiledPlan::release`] once ownership is unique.
#[derive(Debug)]
pub struct CompiledPlan {
    /// The strip schedule resolved against the build-time binding — the
    /// baseline instances rebase from (never mutated).
    strips: Vec<ResolvedStrip>,
    /// The strip schedule translated into lane-word addresses, when the
    /// build binding ran on the lockstep engine (fast mode, no array
    /// aliasing). Empty otherwise. Lane addresses depend only on the
    /// view's range lengths and order — both rebind-invariant — so every
    /// instance over same-shape arrays shares this translation verbatim.
    lane_strips: Vec<ResolvedStrip>,
    /// The kernel tier: each lane strip's compiled monomorphized form,
    /// parallel to `lane_strips` (`None` where the classifier fell back
    /// to the interpreter).
    lane_kernels: Vec<Option<StripKernels>>,
    halos: Vec<HaloBuffer>,
    exchanges: Vec<ExchangeProgram>,
    consts: Field,
    /// Literal coefficient pages, in `spec.coeffs` order (named entries
    /// skipped): the field plus the constant streamed through it.
    literal_pages: Vec<(Field, f32)>,
    /// Indices into `spec.coeffs` of the named coefficients, parallel to
    /// `coeffs` — the rebase slots an instance binding must shift.
    named_slots: Vec<u16>,
    /// Total coefficient slots (`spec.coeffs.len()`): rebase deltas must
    /// cover literal slots too (always zero — their pages never move).
    coeff_slot_count: usize,
    /// The build-time binding: the baseline `strips` were resolved
    /// against, from which instance bindings compute rebase deltas.
    result: CmArray,
    sources: Vec<CmArray>,
    coeffs: Vec<CmArray>,
    useful_flops: u64,
    call_overhead: u64,
    dispatch: u64,
    nodes: usize,
    opts: ExecOptions,
    fingerprint: u64,
    lifetime: PlanLifetime,
    /// Resolved half-strips per kernel width (index 0 → width 8, then
    /// 4, 2, 1) — the paper's strip-mine distribution, replayed verbatim
    /// by every execute and reported through `cmcc_obs`.
    strip_widths: [u64; 4],
    /// The temporal-tiling schedule: `Some` when the plan fuses two or
    /// more time steps per halo exchange ([`ExecOptions::temporal_depth`]
    /// honored), `None` for the classic one-step plan.
    temporal: Option<TemporalPlan>,
    /// Why a requested `temporal_depth > 1` was clamped back to 1, when
    /// it was. `None` when the request was honored (or never made).
    temporal_fallback: Option<&'static str>,
}

/// The shared artifacts of a temporally tiled plan: `depth` fused time
/// steps share one deepened (`depth·radius`) halo exchange per execute,
/// ping-ponging intermediate states through plan-owned scratch buffers.
/// Every node computes a shrinking extended region per inner step — the
/// classic redundant-compute trade: margin points are recomputed locally
/// instead of communicated.
#[derive(Debug)]
struct TemporalPlan {
    /// Fused time steps per execute (≥ 2).
    depth: usize,
    /// Ping-pong intermediate-state buffers, each padded to the full
    /// `depth·radius` frame: none for depth 1, one for depth 2, two
    /// beyond (consecutive states always land in different buffers).
    scratch: Vec<Field>,
    /// Per-named-coefficient halo buffers, padded `(depth−1)·radius`:
    /// intermediate steps read coefficients at margin positions, which
    /// live on neighbor nodes just like source halo words do.
    coeff_halos: Vec<HaloBuffer>,
    /// The halo exchange for each coefficient halo above.
    coeff_exchanges: Vec<ExchangeProgram>,
    /// The beyond-global-edge fill fix-up per scratch buffer: a
    /// zero-fill boundary requires margin reads past the global edge to
    /// see the fill value, but intermediate steps write computed garbage
    /// there; this restores the invariant after every non-final step.
    /// Empty programs under a circular boundary (wrapped margin values
    /// are recomputed bit-identically, no fix-up needed).
    scratch_fills: Vec<FillProgram>,
    /// Prefix boundaries into `strips`/`lane_strips` per inner step:
    /// step `j` runs the index range `step_bounds[j]..step_bounds[j+1]`.
    step_bounds: Vec<usize>,
}

/// The mutable half of an execution plan: one tenant's binding and
/// execution state over a shared [`CompiledPlan`] — the rebased strip
/// schedule, the lane view over the tenant's arrays, the persistent lane
/// mirror with its primed/stale flags, and the packed coefficient
/// streams.
///
/// Instances are cheap to create (no machine allocation — they reuse the
/// compiled plan's halo buffers and pages) and fully independent: two
/// instances over the same `CompiledPlan` can be rebound and executed
/// without observing each other, as long as machine access is serialized
/// by the caller (the session's machine lock).
#[derive(Debug, Clone)]
pub struct PlanInstance {
    /// The shared schedule rebased onto this instance's binding.
    strips: Vec<ResolvedStrip>,
    /// A private lane translation (strips plus kernel classifications),
    /// used only when the shared plan has none to offer — it was built
    /// from an aliased binding (empty `lane_strips`) and this instance's
    /// binding is clean. `None` means the instance runs the shared
    /// translation; lane addresses are rebind-invariant, so that is the
    /// common case.
    lane_strips_override: Option<(Vec<ResolvedStrip>, Vec<Option<StripKernels>>)>,
    /// Whether `execute` dispatches through the compiled kernels. On by
    /// default; [`ExecutionPlan::set_kernel_tier`] turns it off after
    /// build (for interpreted-baseline benchmarking) without touching
    /// the plan-cache key.
    kernel_tier: bool,
    /// The node-memory ↔ lane-word map for the lockstep engine. `None`
    /// when the engine is scalar, the mode is cycle-accurate, or the
    /// current binding aliases arrays (then `execute` falls back to the
    /// scalar path). Rebind recomputes it in place.
    lane_view: Option<LaneView>,
    /// Whether `execute` runs the lane-resident steady state: the mirror
    /// below persists across executes, sources are refreshed and the
    /// halo exchange runs directly on it, and only writable ranges are
    /// scattered back. Requires a lane view, `opts.lane_resident`, and a
    /// successful translation of every exchange and interior copy.
    lane_resident: bool,
    /// The instance-owned persistent lane mirror. Shaped on first
    /// execute, recycled afterwards (zero steady-state allocations);
    /// contents are invalidated — not freed — by rebind via
    /// `lane_primed`. Poolable across instances via
    /// [`ExecutionPlan::take_mirror`] / [`ExecutionPlan::install_mirror`].
    lane_mirror: LaneMirror,
    /// The halo exchange translated onto the mirror — one per source,
    /// then (temporal plans) one per coefficient halo. Empty unless
    /// `lane_resident`.
    lane_exchanges: Vec<LaneExchangeProgram>,
    /// Interior refresh on the mirror (the lane-domain `fill_interior`),
    /// parallel to `lane_exchanges`: sources first, then (temporal
    /// plans) the bound named-coefficient arrays into their halos.
    /// Empty unless `lane_resident`.
    lane_interiors: Vec<RectCopy>,
    /// The scratch-buffer boundary fix-ups translated onto the mirror,
    /// parallel to the shared plan's `TemporalPlan::scratch_fills`.
    /// Empty unless `lane_resident` on a temporal plan.
    lane_scratch_fills: Vec<LaneFillProgram>,
    /// Whether the mirror currently holds the bound operands. Set by the
    /// priming gather of the first execute after build.
    lane_primed: bool,
    /// Whether a rebind left the mirror's read-only non-halo ranges
    /// (constants, literal pages, named coefficients) possibly stale.
    /// The next execute re-gathers just `lane_reprime` — halo contents
    /// are redefined by the interior refresh + exchange every iteration
    /// and the result range is fully overwritten by the kernels, so
    /// neither needs the full priming gather again.
    lane_stale: bool,
    /// The read-only non-halo ranges as single-run rectangle copies, for
    /// the partial re-prime above. Recomputed by rebind (bases move).
    lane_reprime: Vec<RectCopy>,
    /// Whether the mirror's source interiors and halos already hold this
    /// binding's current values. While true, steady-state executes skip
    /// the interior refresh and the halo exchange entirely: sources are
    /// read-only, the kernels write only the result range, and the
    /// scatter writes only writable node ranges, so the refreshed state
    /// is a fixed point. Cleared by rebinds that move a base and by host
    /// writes (detected via [`Machine::host_writes`]).
    lane_halos_current: bool,
    /// The [`Machine::host_writes`] generation the mirror was last
    /// synchronized at. A newer generation at execute time means the
    /// host mutated node memory since — the snapshot is re-read.
    lane_synced_writes: u64,
    /// The packed coefficient streams the kernel tier reads (the
    /// paper's §4 access-order coefficient layout), cached across
    /// executes — one per fused inner step (a single entry for classic
    /// plans; the stream cache is keyed on a step's kernel list, so
    /// steps cannot share one). Invalidated when a rebind moves a
    /// coefficient base, when strips are retranslated, and when the
    /// host writes node memory; result/source-only rebinds keep it.
    lane_streams: Vec<CoeffStreams>,
    result: CmArray,
    sources: Vec<CmArray>,
    coeffs: Vec<CmArray>,
}

/// Everything a stencil call decides ahead of its first iteration:
/// halo buffers, compiled exchange programs, constant/literal pages, and
/// the fully address-resolved strip schedule.
///
/// Internally an `ExecutionPlan` is a shared immutable [`CompiledPlan`]
/// (held through an [`Arc`], so cloned plans and concurrent tenants share
/// one compiled artifact) plus a private mutable [`PlanInstance`] (this
/// plan's binding, lane mirror, and primed/stale state).
///
/// Build once with [`ExecutionPlan::build`], run any number of times with
/// [`ExecutionPlan::execute`], retarget to other same-shape arrays with
/// [`ExecutionPlan::rebind`], or attach a fresh instance to an existing
/// artifact with [`ExecutionPlan::from_shared`]. A steady-state execute
/// performs **zero** field allocations (observable via
/// [`Machine::alloc_count`]) and zero schedule rebuilds.
///
/// # Examples
///
/// ```
/// use cmcc_cm2::{Machine, MachineConfig};
/// use cmcc_core::Compiler;
/// use cmcc_runtime::{CmArray, ExecOptions, ExecutionPlan, PlanLifetime, StencilBinding};
///
/// let mut machine = Machine::new(MachineConfig::tiny_4())?;
/// let compiled = Compiler::new(machine.config().clone())
///     .compile_assignment("R = 0.25 * CSHIFT(X, 1, -1) + 0.75 * X")?;
/// let x = CmArray::new(&mut machine, 8, 8)?;
/// let r = CmArray::new(&mut machine, 8, 8)?;
/// x.fill(&mut machine, 4.0);
///
/// let binding = StencilBinding::new(&compiled, &r, &[&x], &[])?;
/// let mut plan = ExecutionPlan::build(
///     &mut machine,
///     &binding,
///     &ExecOptions::default(),
///     PlanLifetime::Persistent,
/// )?;
/// let first = plan.execute(&mut machine)?;
/// let again = plan.execute(&mut machine)?;
/// assert_eq!(r.get(&machine, 3, 3), 4.0);
/// assert_eq!(first, again); // deterministic, allocation-free replay
/// plan.release(&mut machine);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    shared: Arc<CompiledPlan>,
    inst: PlanInstance,
}

impl CompiledPlan {
    /// Plans every *shared* per-call decision for `binding` under `opts`.
    ///
    /// Allocates the halo buffers and constant pages (from the region
    /// `lifetime` selects), fills the constant pages, compiles one
    /// [`ExchangeProgram`] per source, resolves the complete strip
    /// schedule to absolute operand addresses, translates it onto the
    /// lane domain, and classifies every lane strip against the kernel
    /// family. The result is immutable: tenants attach to it with
    /// [`ExecutionPlan::from_shared`], which rebases onto their arrays
    /// without touching the artifact.
    ///
    /// Counts one `PlanBuilds` — the exactly-once build assertion
    /// concurrent sessions rely on.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::SubgridTooSmall`] when the stencil's halo is deeper
    /// than the per-node subgrid, or [`RuntimeError::OutOfMemory`].
    pub fn build(
        machine: &mut Machine,
        binding: &StencilBinding<'_>,
        opts: &ExecOptions,
        lifetime: PlanLifetime,
    ) -> Result<Self, RuntimeError> {
        let _span = cmcc_obs::span(cmcc_obs::Phase::PlanBuild);
        cmcc_obs::add(cmcc_obs::Counter::PlanBuilds, 1);
        let compiled = binding.compiled();
        let spec = compiled.spec();
        let stencil = compiled.stencil();
        let result = *binding.result();
        let sub_rows = result.sub_rows();
        let sub_cols = result.sub_cols();
        let pad = stencil.borders().max_width() as usize;
        let persistent = lifetime == PlanLifetime::Persistent;

        // Temporal tiling: fuse `depth` time steps per halo exchange by
        // deepening the halo to `depth·radius` and recomputing margin
        // points locally (the redundant-compute trade). Eligibility is
        // exactly the set of plans the fused schedule below can express;
        // anything else clamps back to one step per exchange and records
        // why, both in the counter and on the plan.
        let requested_depth = opts.temporal_depth.max(1);
        let mut temporal_fallback = None;
        let depth = if requested_depth == 1 {
            1
        } else {
            let reason = if opts.mode != ExecMode::Fast {
                Some("cycle-accurate mode")
            } else if opts.engine != ExecEngine::Lockstep {
                Some("scalar engine")
            } else if !opts.lane_resident {
                Some("lane residency disabled")
            } else if binding.sources().len() != 1 {
                Some("multi-source stencil")
            } else if pad == 0 {
                Some("pointwise stencil")
            } else if requested_depth * pad > sub_rows.min(sub_cols) {
                Some("subgrid smaller than depth x radius")
            } else {
                None
            };
            match reason {
                Some(why) => {
                    cmcc_obs::add(cmcc_obs::Counter::TemporalFallbacks, 1);
                    temporal_fallback = Some(why);
                    1
                }
                None => requested_depth,
            }
        };
        // The deepest margin any inner step computes: step j writes a
        // `(depth-1-j)·radius`-deep extension of the subgrid, so step 0
        // reads `depth·radius` (the source halo) and every step reads
        // coefficients at up to `(depth-1)·radius` beyond the edge.
        let halo_pad = depth * pad;
        let coeff_pad = (depth - 1) * pad;

        let halos: Vec<HaloBuffer> = binding
            .sources()
            .iter()
            .map(|_| {
                if persistent {
                    HaloBuffer::new_persistent(machine, sub_rows, sub_cols, halo_pad)
                } else {
                    HaloBuffer::new(machine, sub_rows, sub_cols, halo_pad)
                }
            })
            .collect::<Result<_, _>>()?;

        let alloc = |machine: &mut Machine, len: usize| {
            if persistent {
                machine.alloc_field_persistent(len)
            } else {
                machine.alloc_field(len)
            }
        };

        // Constant pages: one word each of 1.0 and 0.0, plus one page
        // per literal coefficient (streamed with a zero row stride).
        // Temporal plans widen the pages by the deepest intermediate
        // margin so extended-region columns stay in bounds.
        let consts = alloc(machine, 2)?;
        let page_cols = sub_cols + 2 * coeff_pad;
        let mut pages: Vec<Option<(Field, f32)>> = Vec::with_capacity(spec.coeffs.len());
        for c in &spec.coeffs {
            match c {
                CoeffSpec::Literal(v) => pages.push(Some((alloc(machine, page_cols)?, *v))),
                CoeffSpec::Named(_) => pages.push(None),
            }
        }
        let ones_addr = consts.addr(0);
        let zeros_addr = consts.addr(1);
        for (_, mem) in machine.par_nodes_mut() {
            mem.write(ones_addr, 1.0);
            mem.write(zeros_addr, 0.0);
            for &(page, value) in pages.iter().flatten() {
                mem.fill_field(page, value);
            }
        }

        // The halo exchange, compiled: neighbor lookups, copy addresses,
        // fill spans, and the cycle price are all fixed by (shape, grid,
        // boundary, primitive).
        // Fused steps always need corners: composing the stencil with
        // itself reaches diagonal neighbors even when one application
        // does not.
        let need_corners = if opts.skip_corners_when_possible {
            stencil.needs_corner_exchange() || depth > 1
        } else {
            pad > 0
        };
        let grid = machine.grid();
        let exchanges: Vec<ExchangeProgram> = halos
            .iter()
            .map(|halo| {
                ExchangeProgram::new(
                    halo,
                    grid,
                    machine.config(),
                    stencil.boundary(),
                    stencil.fill(),
                    need_corners,
                    opts.primitive,
                )
            })
            .collect();

        // Temporal plans read named coefficients at margin positions,
        // which live on neighbor nodes: each gets its own (shallower)
        // halo buffer and exchange, refreshed alongside the source halo.
        let mut coeff_halos: Vec<HaloBuffer> = Vec::new();
        let mut coeff_exchanges: Vec<ExchangeProgram> = Vec::new();
        if depth > 1 {
            for _ in binding.coeffs() {
                let halo = if persistent {
                    HaloBuffer::new_persistent(machine, sub_rows, sub_cols, coeff_pad)?
                } else {
                    HaloBuffer::new(machine, sub_rows, sub_cols, coeff_pad)?
                };
                coeff_exchanges.push(ExchangeProgram::new(
                    &halo,
                    grid,
                    machine.config(),
                    stencil.boundary(),
                    stencil.fill(),
                    need_corners,
                    opts.primitive,
                ));
                coeff_halos.push(halo);
            }
        }

        // Intermediate-state scratch, ping-ponged between inner steps.
        // Padded to the full halo frame so every step's extended write
        // region (and the next step's reads one radius beyond it) stays
        // in bounds at non-negative padded coordinates.
        let scratch_count = match depth {
            1 => 0,
            2 => 1,
            _ => 2,
        };
        let scratch_stride = sub_cols + 2 * halo_pad;
        let scratch: Vec<Field> = (0..scratch_count)
            .map(|_| alloc(machine, (sub_rows + 2 * halo_pad) * scratch_stride))
            .collect::<Result<_, _>>()?;
        let scratch_layout = |f: &Field| FieldLayout {
            base: f.base(),
            row_stride: scratch_stride,
            row_offset: halo_pad as i64,
            col_offset: halo_pad as i64,
        };
        let scratch_fills: Vec<FillProgram> = scratch
            .iter()
            .map(|&f| {
                FillProgram::boundary(
                    &HaloBuffer::over(f, sub_rows, sub_cols, halo_pad),
                    grid,
                    stencil.boundary(),
                    stencil.fill(),
                )
            })
            .collect();

        // Coefficient address tables, indexed like `MemRef::Coeff.array`.
        // Temporal plans read named coefficients through their plan-owned
        // halo buffers (margin positions included) instead of the bound
        // arrays directly; literal pages carry the margin as a column
        // offset (their row stride is zero either way).
        let mut named_iter = binding.coeffs().iter();
        let mut coeff_halo_iter = coeff_halos.iter();
        let mut named_slots = Vec::with_capacity(binding.coeffs().len());
        let coeff_layouts: Vec<FieldLayout> = spec
            .coeffs
            .iter()
            .zip(&pages)
            .enumerate()
            .map(|(i, (c, page))| match c {
                CoeffSpec::Named(_) => {
                    named_slots.push(i as u16);
                    let bound = named_iter.next().expect("coefficient count was validated");
                    match coeff_halo_iter.next() {
                        Some(halo) => halo.layout(),
                        None => bound.layout(),
                    }
                }
                CoeffSpec::Literal(_) => {
                    let (page, _) = page.expect("literal page was allocated");
                    // The row offset keeps margin-shifted rows (down to
                    // `-coeff_pad`) non-negative; with a zero row stride
                    // it never moves the address.
                    FieldLayout {
                        base: page.base(),
                        row_stride: 0,
                        row_offset: coeff_pad as i64,
                        col_offset: coeff_pad as i64,
                    }
                }
            })
            .collect();

        // The strip schedule, resolved: identical on every node (SIMD),
        // built once in the same order the rebuild-per-call path emits,
        // with every memory operand turned into an absolute address.
        // Temporal plans concatenate one sub-schedule per fused inner
        // step: step `j` computes a `(depth-1-j)·radius`-deep extension
        // of the subgrid (reads reach one radius further — exactly the
        // previous step's write margin), reading the deepened source
        // halo (step 0) or the previous scratch state, and writing the
        // next scratch state or (final step) the bound result.
        let src_layouts: Vec<FieldLayout> = halos.iter().map(HaloBuffer::layout).collect();
        let mut strips = Vec::new();
        let mut strip_widths = [0u64; 4];
        let mut step_bounds = vec![0usize];
        for step in 0..depth {
            let margin = (depth - 1 - step) * pad;
            let step_srcs: Vec<FieldLayout> = if step == 0 {
                src_layouts.clone()
            } else {
                vec![scratch_layout(&scratch[(step - 1) % 2])]
            };
            let step_res = if step + 1 == depth {
                result.layout()
            } else {
                scratch_layout(&scratch[step % 2])
            };
            let halves = if opts.half_strips {
                halfstrips(sub_rows + 2 * margin)
            } else {
                full_strip(sub_rows + 2 * margin)
            };
            for strip in plan_strips(compiled, sub_cols + 2 * margin) {
                let sk = compiled
                    .widest_kernel_for(strip.width)
                    .expect("plan_strips used compiled widths");
                debug_assert_eq!(sk.width, strip.width);
                for half in &halves {
                    let kernel = match half.walk {
                        Walk::North => &sk.north,
                        Walk::South => &sk.south,
                    };
                    let ctx = StripContext {
                        srcs: &step_srcs,
                        res: step_res,
                        coeffs: &coeff_layouts,
                        ones_addr,
                        zeros_addr,
                        start_row: half.start_row as i64 - margin as i64,
                        lines: half.lines,
                        col0: strip.col0 as i64 - margin as i64,
                    };
                    let mut resolved = ResolvedStrip::new(kernel, &ctx);
                    if depth > 1 {
                        // Scratch and coefficient-halo addresses are
                        // plan-owned and never move on rebind: freeze
                        // them so rebase shifts only the final step's
                        // result operands.
                        resolved.freeze_slots(step + 1 < depth, true);
                    }
                    strips.push(resolved);
                    if let Some(slot) = width_slot(strip.width) {
                        strip_widths[slot] += 1;
                    }
                }
            }
            step_bounds.push(strips.len());
        }

        // Lane mapping for the lockstep engine: mirror exactly the
        // buffers the schedule touches, translate the schedule into lane
        // words. Either step can fail — aliased arrays overlap, or an
        // address walk escapes its buffer — and then the plan simply
        // keeps the scalar path. Only the translation is kept: lane
        // addresses depend on range lengths and order alone, both
        // binding-invariant, so the artifact shares it with every
        // instance; the view itself (gather/scatter bases) and the
        // resident exchange/interior programs are per-binding and are
        // recomputed by [`PlanInstance::for_binding`].
        let literal_pages: Vec<(Field, f32)> = pages.into_iter().flatten().collect();
        let mut lane_strips = Vec::new();
        if opts.mode == ExecMode::Fast && opts.engine == ExecEngine::Lockstep {
            let view = if depth > 1 {
                LaneView::new_with_private(&lane_ranges_temporal(
                    &halos,
                    consts,
                    &literal_pages,
                    &coeff_halos,
                    &scratch,
                    &result,
                ))
            } else {
                LaneView::new(&lane_ranges(
                    &halos,
                    consts,
                    &literal_pages,
                    binding.coeffs(),
                    &result,
                ))
            };
            if let Some(view) = view {
                if let Some(translated) = strips
                    .iter()
                    .map(|s| s.translate(&view))
                    .collect::<Option<Vec<_>>>()
                {
                    lane_strips = translated;
                }
            }
        }

        // The kernel tier: classify every lane strip against the
        // monomorphized family. Strips the classifier rejects keep a
        // `None` and run interpreted — visible as `interpreted_steps`.
        let lane_kernels: Vec<Option<StripKernels>> =
            lane_strips.iter().map(StripKernels::compile).collect();

        let cfg = machine.config();
        Ok(CompiledPlan {
            strips,
            lane_strips,
            lane_kernels,
            halos,
            exchanges,
            consts,
            literal_pages,
            named_slots,
            coeff_slot_count: spec.coeffs.len(),
            result,
            sources: binding.sources().to_vec(),
            coeffs: binding.coeffs().to_vec(),
            useful_flops: stencil.useful_flops_per_point()
                * (result.rows() * result.cols()) as u64
                * depth as u64,
            call_overhead: u64::from(cfg.call_overhead_cycles),
            dispatch: u64::from(cfg.frontend_dispatch_cycles),
            nodes: machine.node_count(),
            opts: *opts,
            fingerprint: compiled.fingerprint(),
            lifetime,
            strip_widths,
            temporal: (depth > 1).then_some(TemporalPlan {
                depth,
                scratch,
                coeff_halos,
                coeff_exchanges,
                scratch_fills,
                step_bounds,
            }),
            temporal_fallback,
        })
    }

    /// Validates that a candidate binding can attach to this artifact:
    /// argument counts equal the build binding's, and every array has
    /// the compiled shape. `what` prefixes error messages ("rebind",
    /// "bound").
    fn validate_binding(
        &self,
        what: &str,
        result: &CmArray,
        sources: &[&CmArray],
        coeffs: &[&CmArray],
    ) -> Result<(), RuntimeError> {
        if sources.len() != self.sources.len() {
            return Err(RuntimeError::WrongSourceCount {
                expected: self.sources.len(),
                got: sources.len(),
            });
        }
        if coeffs.len() != self.coeffs.len() {
            return Err(RuntimeError::WrongCoeffCount {
                expected: self.coeffs.len(),
                got: coeffs.len(),
            });
        }
        let check = |kind: &str, arr: &CmArray| -> Result<(), RuntimeError> {
            if !arr.same_shape(&self.result) {
                return Err(RuntimeError::ShapeMismatch {
                    what: format!(
                        "{what} {kind} is {}x{} but the plan was built for {}x{}",
                        arr.rows(),
                        arr.cols(),
                        self.result.rows(),
                        self.result.cols()
                    ),
                });
            }
            Ok(())
        };
        check("result", result)?;
        for s in sources {
            check("source", s)?;
        }
        for c in coeffs {
            check("coefficient", c)?;
        }
        Ok(())
    }

    /// The [`CompiledStencil::fingerprint`] this artifact was built from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Global rows of the compiled shape.
    pub fn rows(&self) -> usize {
        self.result.rows()
    }

    /// Global columns of the compiled shape.
    pub fn cols(&self) -> usize {
        self.result.cols()
    }

    /// The execution options the artifact was built under.
    pub fn options(&self) -> &ExecOptions {
        &self.opts
    }

    /// Where the artifact's node-memory fields live.
    pub fn lifetime(&self) -> PlanLifetime {
        self.lifetime
    }

    /// Words of node memory the artifact's halo buffers, constant pages,
    /// and (temporal plans) coefficient halos and scratch states occupy.
    pub fn words(&self) -> usize {
        self.halos.iter().map(HaloBuffer::words).sum::<usize>()
            + self.consts.len()
            + self
                .literal_pages
                .iter()
                .map(|(p, _)| p.len())
                .sum::<usize>()
            + self.temporal.as_ref().map_or(0, |tp| {
                tp.coeff_halos.iter().map(HaloBuffer::words).sum::<usize>()
                    + tp.scratch.iter().map(Field::len).sum::<usize>()
            })
    }

    /// Fused time steps per execute: the effective temporal depth (1 for
    /// classic plans, including clamped requests).
    pub fn temporal_depth(&self) -> usize {
        self.temporal.as_ref().map_or(1, |tp| tp.depth)
    }

    /// Why a requested temporal depth above 1 was clamped back to one
    /// step per exchange, when it was.
    pub fn temporal_fallback(&self) -> Option<&'static str> {
        self.temporal_fallback
    }

    /// Returns the artifact's persistent fields to the arena. The caller
    /// must hold the *only* reference (the session sweeps retired plans
    /// through [`Arc::try_unwrap`] before calling this), because
    /// instances read the halo buffers and pages on every execute.
    ///
    /// # Panics
    ///
    /// Panics if the artifact was built with [`PlanLifetime::Scoped`] —
    /// scoped fields fall away with the caller's [`Machine::release_to`].
    pub fn release(self, machine: &mut Machine) {
        assert_eq!(
            self.lifetime,
            PlanLifetime::Persistent,
            "scoped plans are reclaimed by release_to, not release"
        );
        if let Some(tp) = self.temporal {
            for field in tp.scratch.into_iter().rev() {
                machine.free_field_persistent(field);
            }
            for halo in tp.coeff_halos.into_iter().rev() {
                halo.release(machine);
            }
        }
        for &(page, _) in self.literal_pages.iter().rev() {
            machine.free_field_persistent(page);
        }
        machine.free_field_persistent(self.consts);
        for halo in self.halos.into_iter().rev() {
            halo.release(machine);
        }
    }
}

impl PlanInstance {
    /// Creates the per-tenant state for `cp` bound to the given arrays:
    /// rebases the shared schedule onto this binding, recomputes the
    /// lane view over these arrays, and retranslates the resident
    /// exchange/interior programs. Performs no machine allocation.
    ///
    /// `populate_reprime` selects whether the partial re-prime rectangle
    /// list is computed up front (instances attached to an existing
    /// artifact) or left empty exactly as a fresh build leaves it (the
    /// build path — the first execute primes the whole mirror, and a
    /// rebind populates the list).
    fn for_binding(
        cp: &CompiledPlan,
        result: &CmArray,
        sources: &[CmArray],
        coeffs: &[CmArray],
        populate_reprime: bool,
    ) -> Self {
        // Rebase the shared schedule onto this binding. Same-shape
        // arrays differ only in their base addresses, so the deltas
        // against the build binding are all a rebind would apply.
        let result_delta = result.field().base() as i64 - cp.result.field().base() as i64;
        let mut coeff_deltas = vec![0i64; cp.coeff_slot_count];
        let mut any_coeff = false;
        for ((&slot, old), new) in cp.named_slots.iter().zip(&cp.coeffs).zip(coeffs) {
            let delta = new.field().base() as i64 - old.field().base() as i64;
            coeff_deltas[slot as usize] = delta;
            any_coeff |= delta != 0;
        }
        let mut strips = cp.strips.clone();
        if result_delta != 0 || any_coeff {
            for strip in &mut strips {
                strip.rebase(result_delta, &coeff_deltas);
            }
        }

        // The lane view is per-binding (gather/scatter bases move with
        // the arrays), but lane *addresses* depend only on range lengths
        // and order, so the shared translation is reused whenever the
        // artifact has one. A private translation is built only when the
        // artifact was compiled from an aliased binding (no shared lane
        // strips) and this binding is clean.
        let mut lane_view = None;
        let mut lane_strips_override = None;
        if cp.opts.mode == ExecMode::Fast && cp.opts.engine == ExecEngine::Lockstep {
            if let Some(view) = instance_lane_view(cp, sources, coeffs, result) {
                if cp.lane_strips.len() == strips.len() {
                    lane_view = Some(view);
                } else if let Some(translated) = strips
                    .iter()
                    .map(|s| s.translate(&view))
                    .collect::<Option<Vec<_>>>()
                {
                    let kernels = translated.iter().map(StripKernels::compile).collect();
                    lane_strips_override = Some((translated, kernels));
                    lane_view = Some(view);
                }
            }
        }

        let mut lane_exchanges = Vec::new();
        let mut lane_interiors = Vec::new();
        let mut lane_scratch_fills = Vec::new();
        let mut lane_resident = false;
        let mut lane_reprime = Vec::new();
        if cp.opts.lane_resident {
            if let Some(view) = &lane_view {
                if let Some(programs) = resident_programs(cp, view, sources, coeffs) {
                    lane_exchanges = programs.exchanges;
                    lane_interiors = programs.interiors;
                    lane_scratch_fills = programs.scratch_fills;
                    lane_resident = true;
                    // Temporal plans have nothing to re-prime: the view's
                    // read-only non-halo ranges are all plan-owned, and
                    // coefficient-halo contents flow through the interior
                    // refresh, never through a node-memory gather.
                    if populate_reprime && cp.temporal.is_none() {
                        lane_reprime = reprime_copies(view, cp.halos.len());
                    }
                }
            }
        }

        PlanInstance {
            strips,
            lane_strips_override,
            kernel_tier: true,
            lane_view,
            lane_resident,
            lane_mirror: LaneMirror::new(),
            lane_exchanges,
            lane_interiors,
            lane_scratch_fills,
            lane_primed: false,
            lane_stale: false,
            lane_reprime,
            lane_halos_current: false,
            lane_synced_writes: 0,
            lane_streams: (0..cp.temporal_depth())
                .map(|_| CoeffStreams::new())
                .collect(),
            result: *result,
            sources: sources.to_vec(),
            coeffs: coeffs.to_vec(),
        }
    }

    /// Folds a host-write generation bump into the instance's cached
    /// node-memory snapshots: a host write since the last execute (array
    /// scatter/fill/set) invalidates the packed coefficient streams, and
    /// on the resident path the source fixed point is re-read and the
    /// read-only non-halo ranges are re-primed, as a rebind would.
    fn sync_host_writes(&mut self, host_writes: u64) {
        if self.lane_view.is_some() && self.lane_synced_writes != host_writes {
            self.lane_synced_writes = host_writes;
            for streams in &mut self.lane_streams {
                streams.invalidate();
            }
            self.lane_halos_current = false;
            if self.lane_primed {
                self.lane_stale = true;
            }
        }
    }

    /// The lane-resident execute body, shared between the exclusive
    /// write-lock path and the region-leased shared-lock path — the two
    /// differ only in how the final scatter reaches node memory (see
    /// [`ResidentAccess`]). Returns the kernel run plus the modeled
    /// exchange cycles and the halo words this execute actually moved.
    fn run_resident(
        &mut self,
        cp: &CompiledPlan,
        access: ResidentAccess<'_, '_>,
    ) -> (StripRun, u64, usize) {
        let depth = cp.temporal_depth();
        let mut exchange_words = 0usize;
        let mut comm = 0u64;
        // The effective lane schedule: the instance's private
        // translation when the shared artifact has none (it was built
        // from an aliased binding and this binding is clean), else the
        // shared one.
        let (lane_strips, lane_kernels) = match &self.lane_strips_override {
            Some((s, k)) => (s.as_slice(), k.as_slice()),
            None => (cp.lane_strips.as_slice(), cp.lane_kernels.as_slice()),
        };
        // Lane-resident steady state: operands live in the plan's
        // mirror between executes. Read-only ranges were gathered
        // when the mirror was primed; the source interiors and the
        // halo exchange are refreshed once and then treated as a
        // fixed point — sources are read-only, the kernels write
        // only the result range, and the scatter writes only
        // writable node ranges, so nothing the refresh produced can
        // change until a rebind moves a base or the host writes
        // node memory (tracked by `Machine::host_writes`). Only
        // writable ranges are scattered back each iteration.
        let view = self
            .lane_view
            .as_ref()
            .expect("resident plans are lane-mapped");
        self.lane_mirror
            .ensure(view.words(), cp.nodes, cp.opts.threads);
        let mems: &[NodeMemory] = match &access {
            ResidentAccess::Exclusive(m) => m,
            ResidentAccess::Shared(m, _) => m,
        };
        if !self.lane_primed {
            self.lane_mirror.gather(view, mems);
            self.lane_primed = true;
            self.lane_stale = false;
        } else if self.lane_stale {
            // Partial re-prime after a rebind: only the read-only
            // non-halo ranges can hold stale contents (see the
            // `lane_stale` field). Far cheaper than a full gather —
            // this is what keeps plan-cache hits in steady state.
            for rect in &self.lane_reprime {
                self.lane_mirror.gather_rect(mems, rect);
            }
            self.lane_stale = false;
        }
        let refreshed = !self.lane_halos_current;
        for (interior, exchange) in self.lane_interiors.iter().zip(&self.lane_exchanges) {
            // The modeled NEWS cycles are charged every iteration —
            // the CM-2 exchanges every time. Skipping the host-side
            // copies is an emulator fixed-point optimization and
            // must not perturb the `Measurement`.
            comm += exchange.cycles();
            if !self.lane_halos_current {
                {
                    let _t = cmcc_obs::trace::scope(
                        cmcc_obs::trace::TraceOp::InteriorRefresh,
                        (interior.rows * interior.cols) as u64,
                    );
                    self.lane_mirror.gather_rows(mems, interior);
                }
                exchange_words += exchange.words_moved();
                let _ = exchange.run(&mut self.lane_mirror);
            }
        }
        self.lane_halos_current = true;
        if refreshed
            && cp
                .temporal
                .as_ref()
                .is_some_and(|tp| !tp.coeff_halos.is_empty())
        {
            // The refresh rewrote the coefficient halos on the
            // mirror; the packed streams hold the old values.
            for streams in &mut self.lane_streams {
                streams.invalidate();
            }
        }
        let kernels: &[Option<StripKernels>] = if self.kernel_tier { lane_kernels } else { &[] };
        let mut run = StripRun::default();
        for step in 0..depth {
            let (lo, hi) = match &cp.temporal {
                Some(tp) => (tp.step_bounds[step], tp.step_bounds[step + 1]),
                None => (0, lane_strips.len()),
            };
            let step_kernels = if kernels.is_empty() {
                kernels
            } else {
                &kernels[lo..hi]
            };
            let _t = cmcc_obs::trace::scope(cmcc_obs::trace::TraceOp::KernelSweep, step as u64);
            run.absorb(&run_lockstep_groups_kernelized(
                &lane_strips[lo..hi],
                step_kernels,
                &mut self.lane_streams[step],
                self.lane_mirror.groups_mut(),
            ));
            if step + 1 < depth {
                self.lane_scratch_fills[step % 2].run(&mut self.lane_mirror);
            }
        }
        match access {
            ResidentAccess::Exclusive(mems) => {
                // In debug builds, prove the scatter honors the view's
                // read-only ranges (node 0 stands in for all — SIMD).
                #[cfg(debug_assertions)]
                let before: Vec<u32> = view
                    .ranges()
                    .iter()
                    .filter(|r| !r.writable || r.private)
                    .flat_map(|r| {
                        mems[0]
                            .slice(r.node_base, r.len)
                            .iter()
                            .map(|v| v.to_bits())
                    })
                    .collect();
                self.lane_mirror.scatter(view, mems);
                #[cfg(debug_assertions)]
                {
                    let after: Vec<u32> = view
                        .ranges()
                        .iter()
                        .filter(|r| !r.writable || r.private)
                        .flat_map(|r| {
                            mems[0]
                                .slice(r.node_base, r.len)
                                .iter()
                                .map(|v| v.to_bits())
                        })
                        .collect();
                    debug_assert_eq!(
                        before, after,
                        "scatter touched a read-only or lane-private range"
                    );
                }
            }
            ResidentAccess::Shared(_, stage) => {
                // Node memory is a shared borrow here: transpose the
                // writable image into the stage instead of scattering.
                // The commit happens later, under the session's brief
                // exclusive lock, while the lease is still held.
                self.lane_mirror.scatter_stage(view, stage);
                // Prove the commit will only touch writable, non-private
                // viewed ranges — the words the execute's lease covers
                // as writable.
                debug_assert!(
                    stage.ranges().iter().all(|&(base, len)| {
                        view.ranges().iter().any(|r| {
                            r.writable
                                && !r.private
                                && base >= r.node_base
                                && base + len <= r.node_base + r.len
                        })
                    }),
                    "staged scatter escaped the view's writable ranges"
                );
            }
        }
        (run, comm, exchange_words)
    }

    /// Runs one region-leased iteration over the shared artifact `cp`:
    /// node memory is borrowed *shared* (many tenants at once under the
    /// session's read lock) and the scatter is staged into `stage` for a
    /// later exclusive commit. Only lane-resident instances may take
    /// this path — the caller checks [`PlanInstance::lane_resident`] —
    /// and the resident path cannot fail, so this returns a bare
    /// [`Measurement`].
    fn execute_region(
        &mut self,
        cp: &CompiledPlan,
        machine: &Machine,
        stage: &mut RegionStage,
    ) -> Measurement {
        let _span = cmcc_obs::span(cmcc_obs::Phase::Execute);
        assert!(self.lane_resident, "region executes require lane residency");
        self.sync_host_writes(machine.host_writes());
        let steady_at_entry = self.lane_primed && !self.lane_stale;
        let rebind_at_entry = self.lane_primed && self.lane_stale;
        let mirror_base = MirrorWords::of(&self.lane_mirror);
        let (_, mems) = machine.exec_parts();
        let (run, comm, exchange_words) =
            self.run_resident(cp, ResidentAccess::Shared(mems, stage));
        self.finish(
            cp,
            ExecTally {
                run,
                comm,
                interior_words: 0,
                exchange_words,
                mirror_base,
                steady_at_entry,
                rebind_at_entry,
            },
        )
    }

    /// Runs one iteration over the shared artifact `cp`. See
    /// [`ExecutionPlan::execute`].
    fn execute(
        &mut self,
        cp: &CompiledPlan,
        machine: &mut Machine,
    ) -> Result<Measurement, RuntimeError> {
        let _span = cmcc_obs::span(cmcc_obs::Phase::Execute);
        self.sync_host_writes(machine.host_writes());
        // Whether this execute is a steady-state iteration (no priming
        // or re-priming gather): the analytic `steady_state_copy_words`
        // prediction applies exactly, and debug builds cross-check it
        // in `finish`.
        let steady_at_entry = !self.lane_resident || (self.lane_primed && !self.lane_stale);
        // A rebind (or host write) cycle: the mirror is primed but its
        // read-only snapshot is stale. The analytic
        // `rebind_cycle_copy_words` prediction applies exactly here.
        let rebind_at_entry = self.lane_resident && self.lane_primed && self.lane_stale;
        let mirror_base = MirrorWords::of(&self.lane_mirror);
        let mut interior_words = 0usize;
        let mut exchange_words = 0usize;
        let mut comm = 0;
        let depth = cp.temporal_depth();
        let run = if self.lane_resident {
            let (_, mems) = machine.exec_parts_mut();
            let (run, resident_comm, resident_exchange) =
                self.run_resident(cp, ResidentAccess::Exclusive(mems));
            comm = resident_comm;
            exchange_words = resident_exchange;
            run
        } else if let Some(tp) = &cp.temporal {
            // The node-domain fused loop: the fallback for temporal
            // plans whose binding cannot ride the lane mirror (aliased
            // arrays, a failed translation). One deepened exchange per
            // execute, then every inner step runs its sub-schedule
            // against node memory, with the scratch boundary fix-up
            // between steps.
            for ((halo, program), src) in cp.halos.iter().zip(&cp.exchanges).zip(&self.sources) {
                interior_words += halo.fill_interior(machine, src);
                exchange_words += program.words_moved();
                comm += program.run(machine);
            }
            for ((halo, program), arr) in tp
                .coeff_halos
                .iter()
                .zip(&tp.coeff_exchanges)
                .zip(&self.coeffs)
            {
                interior_words += halo.fill_interior(machine, arr);
                exchange_words += program.words_moved();
                comm += program.run(machine);
            }
            let mut run = StripRun::default();
            for step in 0..depth {
                let (lo, hi) = (tp.step_bounds[step], tp.step_bounds[step + 1]);
                run.absorb(&machine.run_resolved_all(
                    &self.strips[lo..hi],
                    cp.opts.mode,
                    cp.opts.threads,
                )?);
                if step + 1 < depth {
                    tp.scratch_fills[step % 2].run(machine);
                }
            }
            run
        } else {
            for ((halo, program), src) in cp.halos.iter().zip(&cp.exchanges).zip(&self.sources) {
                interior_words += halo.fill_interior(machine, src);
                exchange_words += program.words_moved();
                comm += program.run(machine);
            }
            // The effective lane schedule: the instance's private
            // translation when the shared artifact has none, else the
            // shared one (see `run_resident`).
            let (lane_strips, lane_kernels) = match &self.lane_strips_override {
                Some((s, k)) => (s.as_slice(), k.as_slice()),
                None => (cp.lane_strips.as_slice(), cp.lane_kernels.as_slice()),
            };
            match &self.lane_view {
                // The lockstep engine without residency: every node
                // gathered into lane storage per execute, each resolved
                // step broadcast across all lanes at once.
                Some(view) => machine.run_resolved_lockstep_all_kernelized(
                    lane_strips,
                    if self.kernel_tier { lane_kernels } else { &[] },
                    &mut self.lane_streams[0],
                    view,
                    cp.opts.threads,
                    &mut self.lane_mirror,
                ),
                None => machine.run_resolved_all(&self.strips, cp.opts.mode, cp.opts.threads)?,
            }
        };
        Ok(self.finish(
            cp,
            ExecTally {
                run,
                comm,
                interior_words,
                exchange_words,
                mirror_base,
                steady_at_entry,
                rebind_at_entry,
            },
        ))
    }

    /// The execute epilogue shared by the exclusive and region paths:
    /// telemetry, the analytic copy-word cross-checks, and the paper's
    /// cycle accounting rolled into a [`Measurement`].
    fn finish(&self, cp: &CompiledPlan, tally: ExecTally) -> Measurement {
        let ExecTally {
            run,
            comm,
            interior_words,
            exchange_words,
            mirror_base,
            steady_at_entry,
            rebind_at_entry,
        } = tally;
        let d = MirrorWords::of(&self.lane_mirror).minus(&mirror_base);
        cmcc_obs::add(
            if self.lane_resident {
                cmcc_obs::Counter::LaneResidentRuns
            } else if self.lane_view.is_some() {
                cmcc_obs::Counter::LockstepRuns
            } else {
                cmcc_obs::Counter::ScalarRuns
            },
            1,
        );
        cmcc_obs::add(cmcc_obs::Counter::FusedSteps, cp.temporal_depth() as u64);
        cmcc_obs::add(cmcc_obs::Counter::UsefulFlops, cp.useful_flops);
        cmcc_obs::add(
            cmcc_obs::Counter::TotalFlops,
            2 * run.macs * cp.nodes as u64,
        );
        cmcc_obs::add(cmcc_obs::Counter::GatherWords, d.gathered);
        cmcc_obs::add(cmcc_obs::Counter::ScatterWords, d.scattered);
        cmcc_obs::add(cmcc_obs::Counter::InteriorRefreshWords, d.row_gathered);
        cmcc_obs::add(cmcc_obs::Counter::MirrorAllocations, d.allocations);
        for (slot, &n) in cp.strip_widths.iter().enumerate() {
            cmcc_obs::add(WIDTH_COUNTERS[slot], n);
        }

        // Debug builds prove the analytic prediction against observed
        // traffic: in steady state (no priming gather) the words this
        // execute moved are exactly `steady_state_copy_words`. Staged
        // scatters count at stage time, so the check is path-independent.
        if cfg!(debug_assertions) && steady_at_entry {
            let observed = (interior_words + exchange_words) as u64
                + d.row_gathered
                + d.gathered
                + d.scattered;
            assert_eq!(
                observed,
                self.steady_copy_words(cp) as u64,
                "steady-state copy words diverged from the analytic prediction"
            );
            if self.lane_resident {
                assert_eq!(
                    d.lane_copied, exchange_words as u64,
                    "lane exchange moved a different word count than its program records"
                );
            }
        } else if cfg!(debug_assertions) && rebind_at_entry {
            // The rebind-cycle counterpart: a primed-but-stale entry
            // re-primes, refreshes, exchanges, and scatters — exactly
            // the amortized traffic `rebind_cycle_copy_words` models.
            let observed = (interior_words + exchange_words) as u64
                + d.row_gathered
                + d.gathered
                + d.scattered;
            assert_eq!(
                observed,
                self.rebind_cycle_copy_words(cp) as u64,
                "rebind-cycle copy words diverged from the analytic prediction"
            );
        }

        // One front-end microcode dispatch per half-strip, exactly as the
        // rebuild path charges.
        let frontend = cp.call_overhead + cp.dispatch * self.strips.len() as u64;

        Measurement {
            useful_flops: cp.useful_flops,
            cycles: CycleBreakdown {
                comm,
                compute: run.cycles,
                frontend,
            },
            nodes: cp.nodes,
        }
    }

    /// Retargets the instance to different arrays of identical shape
    /// over the shared artifact `cp`. See [`ExecutionPlan::rebind`].
    fn rebind(
        &mut self,
        cp: &CompiledPlan,
        result: &CmArray,
        sources: &[&CmArray],
        coeffs: &[&CmArray],
    ) -> Result<(), RuntimeError> {
        let _span = cmcc_obs::span(cmcc_obs::Phase::PlanRebind);
        cmcc_obs::add(cmcc_obs::Counter::PlanRebinds, 1);
        cp.validate_binding("rebind", result, sources, coeffs)?;

        let result_delta = result.field().base() as i64 - self.result.field().base() as i64;
        let mut coeff_deltas = vec![0i64; cp.coeff_slot_count];
        let mut any_coeff = false;
        for ((&slot, old), new) in cp.named_slots.iter().zip(&self.coeffs).zip(coeffs) {
            let delta = new.field().base() as i64 - old.field().base() as i64;
            coeff_deltas[slot as usize] = delta;
            any_coeff |= delta != 0;
        }
        let any_source = self
            .sources
            .iter()
            .zip(sources)
            .any(|(old, new)| old.field().base() != new.field().base());
        if result_delta == 0 && !any_coeff && !any_source {
            // Identical binding (the plan-cache hit replaying the same
            // arrays): nothing to rebase, the lane view is unchanged,
            // and the resident mirror stays valid — host writes are
            // tracked separately by `execute`, so even the source
            // fixed point survives.
            return Ok(());
        }
        if result_delta != 0 || any_coeff {
            for strip in &mut self.strips {
                strip.rebase(result_delta, &coeff_deltas);
            }
        }
        if any_coeff {
            // The packed coefficient streams hold the *old* coefficient
            // values; result/source-only rebinds keep them (the stream
            // is a pure function of the coefficient bindings).
            for streams in &mut self.lane_streams {
                streams.invalidate();
            }
        }

        self.result = *result;
        self.sources.clear();
        self.sources.extend(sources.iter().map(|s| **s));
        self.coeffs.clear();
        self.coeffs.extend(coeffs.iter().map(|c| **c));

        // Recompute the lane view against the new arrays. The ranges keep
        // their order and lengths (shapes were just validated), so lane
        // addresses are unchanged and the translated strips stay valid;
        // only the gather/scatter bases move. A rebind can also turn the
        // lockstep path off (the new binding aliases arrays) or back on.
        if cp.opts.mode == ExecMode::Fast && cp.opts.engine == ExecEngine::Lockstep {
            self.lane_view = None;
            if let Some(view) = instance_lane_view(cp, &self.sources, &self.coeffs, &self.result) {
                let lane_len = self
                    .lane_strips_override
                    .as_ref()
                    .map_or(cp.lane_strips.len(), |(s, _)| s.len());
                if lane_len == self.strips.len() {
                    // Lane addresses are rebind-invariant, so the kept
                    // translation keeps its compiled kernels too.
                    self.lane_view = Some(view);
                } else if let Some(translated) = self
                    .strips
                    .iter()
                    .map(|s| s.translate(&view))
                    .collect::<Option<Vec<_>>>()
                {
                    let kernels = translated.iter().map(StripKernels::compile).collect();
                    self.lane_strips_override = Some((translated, kernels));
                    for streams in &mut self.lane_streams {
                        streams.invalidate();
                    }
                    self.lane_view = Some(view);
                }
            }
        }

        // Mark the resident mirror stale: lane *addresses* survive a
        // rebind (range lengths and order are unchanged), and of the
        // *contents* only the read-only non-halo ranges can matter — the
        // halo words are redefined by the next interior refresh +
        // exchange (`lane_halos_current` is cleared below) and the
        // result is fully overwritten — so the next execute re-primes
        // just those (see `lane_stale`), keeping
        // plan-cache hits in steady state. The mirror's buffers are
        // kept; re-priming allocates nothing. Interior copies read the
        // new source bases; the exchange programs depend only on the
        // halo buffers, which never move, but retranslating is cheap and
        // keeps one code path.
        self.lane_stale = true;
        self.lane_halos_current = false;
        self.lane_resident = false;
        self.lane_exchanges.clear();
        self.lane_interiors.clear();
        self.lane_scratch_fills.clear();
        self.lane_reprime.clear();
        if cp.opts.lane_resident {
            if let Some(view) = &self.lane_view {
                if let Some(programs) = resident_programs(cp, view, &self.sources, &self.coeffs) {
                    self.lane_exchanges = programs.exchanges;
                    self.lane_interiors = programs.interiors;
                    self.lane_scratch_fills = programs.scratch_fills;
                    self.lane_resident = true;
                    if cp.temporal.is_none() {
                        self.lane_reprime = reprime_copies(view, cp.halos.len());
                    }
                }
            }
        }
        Ok(())
    }

    /// Machine-total words copied per steady-state `execute` — the body
    /// behind [`ExecutionPlan::steady_state_copy_words`].
    fn steady_copy_words(&self, cp: &CompiledPlan) -> usize {
        let scatter = |view: &LaneView| {
            view.ranges()
                .iter()
                .filter(|r| r.writable && !r.private)
                .map(|r| r.len)
                .sum::<usize>()
                * cp.nodes
        };
        if self.lane_resident {
            let view = self.lane_view.as_ref().expect("resident plans are mapped");
            return scatter(view);
        }
        // Node-domain refresh: every source interior, plus (temporal
        // plans only) every named-coefficient interior feeding the
        // widened coefficient halos.
        let coeff_interior = match &cp.temporal {
            Some(tp) if !tp.coeff_halos.is_empty() => {
                self.coeffs
                    .iter()
                    .map(|c| c.sub_rows() * c.sub_cols())
                    .sum::<usize>()
                    * cp.nodes
            }
            _ => 0,
        };
        let interior: usize = self
            .sources
            .iter()
            .map(|s| s.sub_rows() * s.sub_cols())
            .sum::<usize>()
            * cp.nodes
            + coeff_interior;
        let exchange: usize = cp
            .exchanges
            .iter()
            .map(ExchangeProgram::words_moved)
            .sum::<usize>()
            + cp.temporal.as_ref().map_or(0, |tp| {
                tp.coeff_exchanges
                    .iter()
                    .map(ExchangeProgram::words_moved)
                    .sum()
            });
        // Temporal plans never run the gather/scatter-per-execute lane
        // path — without residency they fall back to the node-domain
        // fused loop — so the mirror term only applies to depth-1 plans.
        let mirror = match (&self.lane_view, &cp.temporal) {
            (Some(view), None) => view.words() * cp.nodes + scatter(view),
            _ => 0,
        };
        interior + exchange + mirror
    }

    /// Machine-total words copied by the execute right after a tenant
    /// swap on the lane-resident path: the re-prime gathers, the full
    /// interior refresh, the halo exchange, and the result scatter.
    /// Off the resident path this is the same as the steady-state
    /// figure (every execute already pays the full refresh).
    fn rebind_cycle_copy_words(&self, cp: &CompiledPlan) -> usize {
        if !self.lane_resident {
            return self.steady_copy_words(cp);
        }
        let view = self.lane_view.as_ref().expect("resident plans are mapped");
        let reprime: usize = self
            .lane_reprime
            .iter()
            .map(|r| r.rows * r.cols)
            .sum::<usize>()
            * cp.nodes;
        let interior: usize = self
            .lane_interiors
            .iter()
            .map(|r| r.rows * r.cols)
            .sum::<usize>()
            * cp.nodes;
        let exchange: usize = self
            .lane_exchanges
            .iter()
            .map(LaneExchangeProgram::words_moved)
            .sum();
        let scatter = view
            .ranges()
            .iter()
            .filter(|r| r.writable && !r.private)
            .map(|r| r.len)
            .sum::<usize>()
            * cp.nodes;
        reprime + interior + exchange + scatter
    }
}

impl ExecutionPlan {
    /// Plans every per-call decision for `binding` under `opts`.
    ///
    /// Builds the shared [`CompiledPlan`] (halo buffers, constant pages,
    /// exchange programs, the resolved and lane-translated strip
    /// schedule) and attaches the binding's own [`PlanInstance`] to it.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::SubgridTooSmall`] when the stencil's halo is deeper
    /// than the per-node subgrid, or [`RuntimeError::OutOfMemory`].
    pub fn build(
        machine: &mut Machine,
        binding: &StencilBinding<'_>,
        opts: &ExecOptions,
        lifetime: PlanLifetime,
    ) -> Result<Self, RuntimeError> {
        let shared = CompiledPlan::build(machine, binding, opts, lifetime)?;
        let inst = PlanInstance::for_binding(
            &shared,
            binding.result(),
            binding.sources(),
            binding.coeffs(),
            false,
        );
        Ok(ExecutionPlan {
            shared: Arc::new(shared),
            inst,
        })
    }

    /// Attaches a fresh per-tenant instance to an existing shared
    /// artifact — the multi-tenant fast path: no machine access, no
    /// field allocation, no strip resolution, just a rebase of the
    /// shared schedule onto this binding's arrays.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ShapeMismatch`] when the binding's compiled
    /// stencil fingerprint or array shapes do not match the artifact;
    /// [`RuntimeError::WrongSourceCount`] / [`RuntimeError::WrongCoeffCount`]
    /// on argument-count mismatches.
    pub fn from_shared(
        shared: &Arc<CompiledPlan>,
        binding: &StencilBinding<'_>,
    ) -> Result<Self, RuntimeError> {
        if binding.compiled().fingerprint() != shared.fingerprint {
            return Err(RuntimeError::ShapeMismatch {
                what: format!(
                    "compiled stencil fingerprint {:#018x} does not match the shared plan's {:#018x}",
                    binding.compiled().fingerprint(),
                    shared.fingerprint
                ),
            });
        }
        let srcs: Vec<&CmArray> = binding.sources().iter().collect();
        let cfs: Vec<&CmArray> = binding.coeffs().iter().collect();
        shared.validate_binding("bound", binding.result(), &srcs, &cfs)?;
        let inst = PlanInstance::for_binding(
            shared,
            binding.result(),
            binding.sources(),
            binding.coeffs(),
            true,
        );
        Ok(ExecutionPlan {
            shared: Arc::clone(shared),
            inst,
        })
    }

    /// The shared compiled artifact this plan executes. Cloning the
    /// returned [`Arc`] keeps the artifact (and its node-memory fields)
    /// alive independently of cache eviction.
    pub fn shared(&self) -> &Arc<CompiledPlan> {
        &self.shared
    }

    /// Runs one iteration: halo exchange, pre-resolved kernel execution,
    /// and the paper's accounting. Performs no field allocation and no
    /// schedule construction; the lane-resident path (lockstep engine,
    /// the default) additionally performs no host allocation and — once
    /// the source fixed point is established — no `NodeMemory` traffic
    /// beyond writing the result. Host writes to bound arrays between
    /// executes are detected via [`Machine::host_writes`] and re-read
    /// automatically.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Hazard`] on a pipeline hazard (a compiler bug).
    pub fn execute(&mut self, machine: &mut Machine) -> Result<Measurement, RuntimeError> {
        self.inst.execute(&self.shared, machine)
    }

    /// Whether this plan's next execute can run region-leased: the
    /// lane-resident steady state, whose only node-memory writes are the
    /// final writable-range scatter (stageable), and whose execute
    /// cannot fail. Everything else — scalar engine, non-resident
    /// lockstep, aliased bindings, the node-domain temporal fallback —
    /// writes node memory mid-execute and must keep the exclusive path.
    pub fn region_eligible(&self) -> bool {
        self.inst.lane_resident
    }

    /// Runs one iteration under *shared* machine access: gathers and
    /// kernels proceed against the read-only node memories, and the
    /// final scatter is transposed into `stage` instead of written. The
    /// caller commits the stage with [`RegionStage::apply`] under a
    /// brief exclusive lock — while still holding the lease over this
    /// plan's [`ExecutionPlan::lease_ranges`], so no overlapping execute
    /// can interleave between the read phase and the commit.
    ///
    /// Results, [`Measurement`]s, and telemetry are bit-identical to
    /// [`ExecutionPlan::execute`] (staged words count as scatter words
    /// at stage time; the commit itself counts nothing).
    ///
    /// # Panics
    ///
    /// Panics if the plan is not [`ExecutionPlan::region_eligible`].
    pub fn execute_region(&mut self, machine: &Machine, stage: &mut RegionStage) -> Measurement {
        self.inst.execute_region(&self.shared, machine, stage)
    }

    /// The node-memory ranges this plan's next execute touches, with
    /// write flags — what the session leases before admitting the
    /// execute. Covers the bound arrays (result writable; sources and
    /// coefficients read-only) plus every plan-owned field: halo
    /// buffers, the constant pair, literal coefficient pages, and —
    /// temporal plans — coefficient halos and ping-pong scratch. On the
    /// lane-resident path the plan-owned fields are read-only (the
    /// refresh and exchange run on the instance's private mirror); off
    /// it, `fill_interior` and the node-domain fused loop write them, so
    /// two instances of one shared artifact must serialize.
    pub fn lease_ranges(&self) -> Vec<LeaseRange> {
        let cp = &*self.shared;
        let owned_writable = !self.inst.lane_resident;
        let mut out = Vec::new();
        let mut push = |f: Field, writable: bool| {
            if !f.is_empty() {
                out.push(LeaseRange {
                    start: f.base(),
                    end: f.base() + f.len(),
                    writable,
                });
            }
        };
        for halo in &cp.halos {
            push(halo.field(), owned_writable);
        }
        push(cp.consts, false);
        for &(page, _) in &cp.literal_pages {
            push(page, false);
        }
        if let Some(tp) = &cp.temporal {
            for halo in &tp.coeff_halos {
                push(halo.field(), owned_writable);
            }
            for f in &tp.scratch {
                push(*f, owned_writable);
            }
        }
        for s in &self.inst.sources {
            push(s.field(), false);
        }
        for c in &self.inst.coeffs {
            push(c.field(), false);
        }
        push(self.inst.result.field(), true);
        out
    }

    /// Retargets the plan to different arrays of identical shape without
    /// rebuilding anything: source swaps are free (sources are read
    /// through the plan's own halo buffers each iteration) and
    /// result/coefficient swaps are a single in-place rebase of the
    /// resolved addresses.
    ///
    /// This is what makes ping-pong time stepping (`swap(cur, next)`) and
    /// volume sweeps reuse one plan.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WrongSourceCount`], [`RuntimeError::WrongCoeffCount`],
    /// or [`RuntimeError::ShapeMismatch`] when the new arrays do not match
    /// the plan's shapes.
    pub fn rebind(
        &mut self,
        result: &CmArray,
        sources: &[&CmArray],
        coeffs: &[&CmArray],
    ) -> Result<(), RuntimeError> {
        self.inst.rebind(&self.shared, result, sources, coeffs)
    }

    /// Returns the plan's persistent fields to the arena — if this was
    /// the artifact's last instance. While other instances (or the plan
    /// cache) still hold the shared artifact, the fields stay live and
    /// this is a no-op beyond dropping the instance.
    ///
    /// Scoped plans skip this — their fields fall away with the caller's
    /// [`Machine::release_to`].
    ///
    /// # Panics
    ///
    /// Panics if the plan was built with [`PlanLifetime::Scoped`] and
    /// this was the last reference to the artifact.
    pub fn release(self, machine: &mut Machine) {
        let ExecutionPlan { shared, inst } = self;
        drop(inst);
        if let Ok(cp) = Arc::try_unwrap(shared) {
            cp.release(machine);
        }
    }

    /// Detaches the instance's lane mirror, for pooling across tenants.
    /// The plan falls back to an unprimed (but still valid) state: its
    /// next execute re-shapes whatever mirror it holds and primes it.
    pub fn take_mirror(&mut self) -> LaneMirror {
        self.inst.lane_primed = false;
        self.inst.lane_stale = false;
        self.inst.lane_halos_current = false;
        std::mem::take(&mut self.inst.lane_mirror)
    }

    /// Installs a (possibly recycled) lane mirror into the instance.
    /// The mirror's buffers are reused when shapes match — this is how
    /// the session mirror pool keeps steady-state allocations at zero
    /// across tenants; contents are treated as garbage and re-primed.
    pub fn install_mirror(&mut self, mirror: LaneMirror) {
        self.inst.lane_mirror = mirror;
        self.inst.lane_primed = false;
        self.inst.lane_stale = false;
        self.inst.lane_halos_current = false;
    }

    /// The [`CompiledStencil::fingerprint`] this plan was built from.
    pub fn fingerprint(&self) -> u64 {
        self.shared.fingerprint
    }

    /// Global rows of the bound arrays.
    pub fn rows(&self) -> usize {
        self.inst.result.rows()
    }

    /// Global columns of the bound arrays.
    pub fn cols(&self) -> usize {
        self.inst.result.cols()
    }

    /// The execution options the plan was built under.
    pub fn options(&self) -> &ExecOptions {
        &self.shared.opts
    }

    /// Where the plan's fields live.
    pub fn lifetime(&self) -> PlanLifetime {
        self.shared.lifetime
    }

    /// Pre-resolved half-strip runs per iteration (front-end dispatches).
    pub fn dispatches(&self) -> usize {
        self.inst.strips.len()
    }

    /// Whether `execute` currently runs the lockstep broadcast engine
    /// (fast mode, lockstep engine selected, current binding lane-mapped
    /// without aliasing). False means the scalar fallback.
    pub fn uses_lockstep(&self) -> bool {
        self.inst.lane_view.is_some()
    }

    /// Whether `execute` currently runs the lane-resident steady state:
    /// the mirror persists across executes, sources and the halo exchange
    /// are applied directly to lane storage, and only writable ranges are
    /// scattered back. False means per-execute gather/scatter (or the
    /// scalar fallback when [`Self::uses_lockstep`] is also false).
    pub fn uses_lane_resident(&self) -> bool {
        self.inst.lane_resident
    }

    /// Turns the kernel tier on or off for subsequent executes. On by
    /// default. A post-build toggle only — results are bit-identical
    /// either way, so it is not an [`ExecOptions`] field and does not
    /// enter the plan-cache key; its one real use is timing the
    /// interpreted lockstep baseline (`repro_simd`).
    pub fn set_kernel_tier(&mut self, on: bool) {
        self.inst.kernel_tier = on;
    }

    /// How many of the plan's lane strips compiled against the kernel
    /// family (the rest run interpreted). Zero when the plan is not
    /// lane-mapped or the tier is off.
    pub fn kernelized_strips(&self) -> usize {
        if !self.inst.kernel_tier {
            return 0;
        }
        match &self.inst.lane_strips_override {
            Some((_, kernels)) => kernels.iter().flatten().count(),
            None => self.shared.lane_kernels.iter().flatten().count(),
        }
    }

    /// Lane-mirror buffer allocations performed so far. Steady state
    /// (repeated `execute` without rebinding a different shape) must not
    /// move this counter; benches and tests assert on the delta.
    pub fn lane_mirror_allocations(&self) -> u64 {
        self.inst.lane_mirror.allocations()
    }

    /// Machine-total words copied per steady-state `execute` under the
    /// current engine. Lane-resident plans reach a fixed point: after
    /// the first refresh the source interiors and halos in the mirror
    /// cannot change between executes (sources are read-only and the
    /// kernels write only the result range), so a steady iteration
    /// copies nothing but the writable-range scatter. The other engines
    /// refresh per iteration: interior source copy + halo-exchange
    /// moves, plus — on the non-resident lockstep engine — the full
    /// mirror gather/scatter. Computed from the plan's structure, so it
    /// cannot drift from what `execute` actually does. Fill words
    /// (border zeroing) are excluded: they are stores, not copies.
    pub fn steady_state_copy_words(&self) -> usize {
        self.inst.steady_copy_words(&self.shared)
    }

    /// Machine-total words the execute right after a tenant swap moves
    /// on the lane-resident path (re-prime + interior refresh + halo
    /// exchange + scatter); equals [`Self::steady_state_copy_words`]
    /// off that path.
    pub fn rebind_cycle_copy_words(&self) -> usize {
        self.inst.rebind_cycle_copy_words(&self.shared)
    }

    /// Fused time steps a single `execute` advances: the plan's
    /// effective temporal depth (1 when temporal tiling is off or was
    /// clamped).
    pub fn temporal_depth(&self) -> usize {
        self.shared.temporal_depth()
    }

    /// Why a requested `temporal_depth > 1` was clamped to 1, if it
    /// was; `None` when the requested depth took effect.
    pub fn temporal_fallback(&self) -> Option<&'static str> {
        self.shared.temporal_fallback()
    }

    /// Words of node memory the plan's halo buffers and constant pages
    /// occupy.
    pub fn words(&self) -> usize {
        self.shared.words()
    }
}

/// `cmcc_obs` strip counters in `strip_widths` slot order (8, 4, 2, 1).
const WIDTH_COUNTERS: [cmcc_obs::Counter; 4] = [
    cmcc_obs::Counter::StripsWidth8,
    cmcc_obs::Counter::StripsWidth4,
    cmcc_obs::Counter::StripsWidth2,
    cmcc_obs::Counter::StripsWidth1,
];

/// Maps a kernel width to its `strip_widths` slot. The compiler only
/// emits the paper's widths (8, 4, 2, 1); anything else is uncounted.
fn width_slot(width: usize) -> Option<usize> {
    match width {
        8 => Some(0),
        4 => Some(1),
        2 => Some(2),
        1 => Some(3),
        _ => None,
    }
}

/// How a lane-resident execute reaches node memory.
///
/// The exclusive variant is the classic write-lock path: the final
/// scatter writes node memory directly. The shared variant is the
/// region-leased path: node memory is a shared borrow (other tenants may
/// be reading it concurrently), so the scatter is transposed into a
/// [`RegionStage`] and committed later under a brief exclusive lock.
enum ResidentAccess<'a, 'b> {
    /// Exclusive node-memory access; scatter writes through.
    Exclusive(&'a mut [NodeMemory]),
    /// Shared node-memory access; scatter staged for a later commit.
    Shared(&'a [NodeMemory], &'b mut RegionStage),
}

/// What one execute accumulated on its way to the shared epilogue
/// ([`PlanInstance::finish`]): the kernel run, modeled exchange cycles,
/// observed copy traffic, and the entry-state flags the debug
/// cross-checks key on.
struct ExecTally {
    run: StripRun,
    comm: u64,
    interior_words: usize,
    exchange_words: usize,
    mirror_base: MirrorWords,
    steady_at_entry: bool,
    rebind_at_entry: bool,
}

/// One node-memory address range an execute touches, with whether it may
/// write it — the unit of the session's region-lease table.
///
/// Two executes may run concurrently exactly when no writable range of
/// either overlaps any range of the other: read-read overlap is harmless
/// (tenants of one shared artifact all read its constant pages and halo
/// buffers), while any overlap involving a write must serialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseRange {
    /// First node-memory address of the range.
    pub start: usize,
    /// One past the last address (exclusive).
    pub end: usize,
    /// Whether the execute may store into the range.
    pub writable: bool,
}

impl LeaseRange {
    /// Whether two leased ranges cannot be held concurrently: they
    /// overlap and at least one side writes.
    pub fn conflicts(&self, other: &LeaseRange) -> bool {
        self.start < other.end && other.start < self.end && (self.writable || other.writable)
    }
}

/// Snapshot of [`LaneMirror`]'s monotonic word counters, differenced
/// around one execute to attribute that execute's mirror traffic.
#[derive(Clone, Copy)]
struct MirrorWords {
    gathered: u64,
    row_gathered: u64,
    scattered: u64,
    lane_copied: u64,
    allocations: u64,
}

impl MirrorWords {
    fn of(mirror: &LaneMirror) -> Self {
        MirrorWords {
            gathered: mirror.gathered_words(),
            row_gathered: mirror.row_gathered_words(),
            scattered: mirror.scattered_words(),
            lane_copied: mirror.lane_copied_words(),
            allocations: mirror.allocations(),
        }
    }

    fn minus(&self, base: &MirrorWords) -> MirrorWords {
        MirrorWords {
            gathered: self.gathered - base.gathered,
            row_gathered: self.row_gathered - base.row_gathered,
            scattered: self.scattered - base.scattered,
            lane_copied: self.lane_copied - base.lane_copied,
            allocations: self.allocations - base.allocations,
        }
    }
}

/// The node-memory ranges a plan's schedule can touch, in the fixed
/// order the lane view mirrors them: halo buffers, the constant pair,
/// literal coefficient pages, named coefficient arrays (all read-only),
/// then the result array (the one range scattered back). The order and
/// lengths are rebind-invariant, which is what keeps lane-translated
/// strips valid across rebinds.
/// The temporal-plan variant of [`lane_ranges`]: named-coefficient
/// *arrays* are replaced by the plan-owned coefficient halos (refreshed
/// like source halos), and the ping-pong scratch states join as
/// writable **lane-private** ranges — their contents are produced and
/// consumed entirely on the mirror within one execute, so neither
/// gather nor scatter ever copies them.
fn lane_ranges_temporal(
    halos: &[HaloBuffer],
    consts: Field,
    literal_pages: &[(Field, f32)],
    coeff_halos: &[HaloBuffer],
    scratch: &[Field],
    result: &CmArray,
) -> Vec<(usize, usize, bool, bool)> {
    let mut ranges = Vec::new();
    for halo in halos {
        let f = halo.field();
        ranges.push((f.base(), f.len(), false, false));
    }
    ranges.push((consts.base(), consts.len(), false, false));
    for &(page, _) in literal_pages {
        ranges.push((page.base(), page.len(), false, false));
    }
    for halo in coeff_halos {
        let f = halo.field();
        ranges.push((f.base(), f.len(), false, false));
    }
    for f in scratch {
        ranges.push((f.base(), f.len(), true, true));
    }
    let f = result.field();
    ranges.push((f.base(), f.len(), true, false));
    ranges
}

/// The lane view over an instance binding of `cp`, or `None` when the
/// binding cannot run on the lockstep engine. Classic plans let the
/// view's own overlap check reject aliased bindings; temporal plans
/// view only plan-owned buffers plus the result, so a result aliased
/// onto a source or coefficient array would slip through — the explicit
/// check here rejects it instead (the fixed-point refresh assumes
/// sources and coefficients are read-only across executes), sending the
/// binding to the node-domain fused loop.
fn instance_lane_view(
    cp: &CompiledPlan,
    sources: &[CmArray],
    coeffs: &[CmArray],
    result: &CmArray,
) -> Option<LaneView> {
    match &cp.temporal {
        Some(tp) => {
            let rf = result.field();
            let overlaps =
                |f: Field| f.base() < rf.base() + rf.len() && rf.base() < f.base() + f.len();
            if sources.iter().chain(coeffs).any(|a| overlaps(a.field())) {
                return None;
            }
            LaneView::new_with_private(&lane_ranges_temporal(
                &cp.halos,
                cp.consts,
                &cp.literal_pages,
                &tp.coeff_halos,
                &tp.scratch,
                result,
            ))
        }
        None => LaneView::new(&lane_ranges(
            &cp.halos,
            cp.consts,
            &cp.literal_pages,
            coeffs,
            result,
        )),
    }
}

fn lane_ranges(
    halos: &[HaloBuffer],
    consts: Field,
    literal_pages: &[(Field, f32)],
    coeffs: &[CmArray],
    result: &CmArray,
) -> Vec<(usize, usize, bool)> {
    let mut ranges = Vec::new();
    for halo in halos {
        let f = halo.field();
        ranges.push((f.base(), f.len(), false));
    }
    ranges.push((consts.base(), consts.len(), false));
    for &(page, _) in literal_pages {
        ranges.push((page.base(), page.len(), false));
    }
    for c in coeffs {
        let f = c.field();
        ranges.push((f.base(), f.len(), false));
    }
    let f = result.field();
    ranges.push((f.base(), f.len(), true));
    ranges
}

/// Translates each source's interior refresh onto the lane mirror: one
/// [`RectCopy`] per source rewrites the mirror rows holding its halo
/// buffer's interior from the (mirror-external) source array every
/// iteration — the lane-resident `fill_interior`. Returns `None` when
/// any halo buffer is not wholly inside one viewed range (then the plan
/// keeps the gather/scatter steady state).
/// The read-only ranges of `view` past the first `halo_count` (constant
/// pair, literal pages, named coefficient arrays), each as a single-run
/// [`RectCopy`] — what a post-rebind partial re-prime must re-gather.
/// Halo ranges are excluded: their observable words are redefined by the
/// interior refresh and exchange every iteration.
fn reprime_copies(view: &LaneView, halo_count: usize) -> Vec<RectCopy> {
    view.ranges()
        .iter()
        .enumerate()
        .filter(|(i, range)| *i >= halo_count && !range.writable)
        .map(|(_, range)| RectCopy {
            src0: range.node_base,
            src_stride: 0,
            dst0: range.lane_base,
            dst_stride: 0,
            rows: 1,
            cols: range.len,
        })
        .collect()
}

/// The full lane-resident program set for `view`: every halo exchange
/// (sources first, then temporal coefficient halos) and interior
/// refresh translated onto the mirror, plus the scratch boundary
/// fix-ups of a temporal plan. `None` when any part fails to translate
/// — the plan then runs without residency.
struct ResidentPrograms {
    exchanges: Vec<LaneExchangeProgram>,
    interiors: Vec<RectCopy>,
    scratch_fills: Vec<LaneFillProgram>,
}

fn resident_programs(
    cp: &CompiledPlan,
    view: &LaneView,
    sources: &[CmArray],
    coeffs: &[CmArray],
) -> Option<ResidentPrograms> {
    let mut exchanges: Vec<LaneExchangeProgram> = cp
        .exchanges
        .iter()
        .map(|p| LaneExchangeProgram::translate(p, view))
        .collect::<Option<_>>()?;
    let mut interiors = lane_interior_copies(view, &cp.halos, sources)?;
    let mut scratch_fills = Vec::new();
    if let Some(tp) = &cp.temporal {
        for p in &tp.coeff_exchanges {
            exchanges.push(LaneExchangeProgram::translate(p, view)?);
        }
        interiors.extend(lane_interior_copies(view, &tp.coeff_halos, coeffs)?);
        for p in &tp.scratch_fills {
            scratch_fills.push(LaneFillProgram::translate(p, view)?);
        }
    }
    Some(ResidentPrograms {
        exchanges,
        interiors,
        scratch_fills,
    })
}

fn lane_interior_copies(
    view: &LaneView,
    halos: &[HaloBuffer],
    sources: &[CmArray],
) -> Option<Vec<RectCopy>> {
    halos
        .iter()
        .zip(sources)
        .map(|(halo, src)| {
            let hl = halo.layout();
            let sl = src.layout();
            let f = halo.field();
            let (lane0, range) = view.locate(f.base())?;
            if f.base() + f.len() > range.node_base + range.len {
                return None;
            }
            Some(RectCopy {
                src0: sl.addr(0, 0),
                src_stride: sl.row_stride,
                dst0: lane0 + (hl.addr(0, 0) - f.base()),
                dst_stride: hl.row_stride,
                rows: src.sub_rows(),
                cols: src.sub_cols(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolve::convolve;
    use cmcc_cm2::config::MachineConfig;
    use cmcc_core::compiler::Compiler;
    use cmcc_core::patterns::PaperPattern;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny_4()).unwrap()
    }

    fn compile(m: &Machine, text: &str) -> CompiledStencil {
        Compiler::new(m.config().clone())
            .compile_assignment(text)
            .unwrap()
    }

    #[test]
    fn plan_matches_fresh_convolve_bit_for_bit() {
        let mut m = machine();
        let compiled = compile(&m, &PaperPattern::Cross5.fortran());
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill_with(&mut m, |r, c| ((r * 13 + c * 7) % 11) as f32 * 0.5 - 2.0);
        let coeffs: Vec<CmArray> = (0..5)
            .map(|i| {
                let a = CmArray::new(&mut m, 8, 8).unwrap();
                a.fill(&mut m, 0.11 * (i + 1) as f32);
                a
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r_fresh = CmArray::new(&mut m, 8, 8).unwrap();
        let r_plan = CmArray::new(&mut m, 8, 8).unwrap();
        let opts = ExecOptions::default();

        let fresh = convolve(&mut m, &compiled, &r_fresh, &x, &refs, &opts).unwrap();

        let binding = StencilBinding::new(&compiled, &r_plan, &[&x], &refs).unwrap();
        let mut plan =
            ExecutionPlan::build(&mut m, &binding, &opts, PlanLifetime::Persistent).unwrap();
        for _ in 0..3 {
            let planned = plan.execute(&mut m).unwrap();
            assert_eq!(planned, fresh);
        }
        let want = r_fresh.gather(&m);
        let got = r_plan.gather(&m);
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        plan.release(&mut m);
    }

    #[test]
    fn steady_state_execute_performs_no_allocations() {
        let mut m = machine();
        let compiled = compile(&m, "R = 0.25 * CSHIFT(X, 1, -1) + 0.75 * X");
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill(&mut m, 1.0);
        let binding = StencilBinding::new(&compiled, &r, &[&x], &[]).unwrap();
        let mut plan = ExecutionPlan::build(
            &mut m,
            &binding,
            &ExecOptions::fast(),
            PlanLifetime::Persistent,
        )
        .unwrap();
        let allocs = m.alloc_count();
        let mark = m.alloc_mark();
        for _ in 0..10 {
            plan.execute(&mut m).unwrap();
        }
        assert_eq!(m.alloc_count(), allocs, "execute must not allocate");
        assert_eq!(m.alloc_mark(), mark, "execute must not move the bump mark");
        plan.release(&mut m);
    }

    #[test]
    fn steady_state_execute_reuses_the_lane_mirror() {
        let mut m = machine();
        let compiled = compile(&m, &PaperPattern::Square9.fortran());
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill_with(&mut m, |r, c| ((r * 7 + c) % 13) as f32 * 0.5);
        let coeffs: Vec<CmArray> = (0..9)
            .map(|i| {
                let a = CmArray::new(&mut m, 8, 8).unwrap();
                a.fill(&mut m, (i as f32 - 4.0) * 0.125);
                a
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let binding = StencilBinding::new(&compiled, &r, &[&x], &refs).unwrap();
        let mut plan = ExecutionPlan::build(
            &mut m,
            &binding,
            &ExecOptions::fast(),
            PlanLifetime::Persistent,
        )
        .unwrap();
        assert!(plan.uses_lane_resident(), "a clean binding stays resident");

        // The first execute shapes the mirror; every later one recycles it.
        let first = plan.execute(&mut m).unwrap();
        let mirror_allocs = plan.lane_mirror_allocations();
        assert!(mirror_allocs > 0, "the priming execute shapes the mirror");
        let node_allocs = m.alloc_count();
        for _ in 0..10 {
            let again = plan.execute(&mut m).unwrap();
            assert_eq!(again, first);
        }
        assert_eq!(
            plan.lane_mirror_allocations(),
            mirror_allocs,
            "steady state must not grow or reshape the lane mirror"
        );
        assert_eq!(m.alloc_count(), node_allocs, "execute must not allocate");

        // Resident steady state skips the full gather, so it copies
        // strictly fewer words than the same plan without residency.
        let binding2 = StencilBinding::new(&compiled, &r, &[&x], &refs).unwrap();
        let mut baseline = ExecutionPlan::build(
            &mut m,
            &binding2,
            &ExecOptions::fast().with_lane_resident(false),
            PlanLifetime::Persistent,
        )
        .unwrap();
        assert!(!baseline.uses_lane_resident());
        assert_eq!(baseline.execute(&mut m).unwrap(), first);
        assert!(plan.steady_state_copy_words() < baseline.steady_state_copy_words());
        baseline.release(&mut m);
        plan.release(&mut m);
    }

    #[test]
    fn release_returns_every_persistent_word() {
        let mut m = machine();
        let compiled = compile(&m, &PaperPattern::Square9.fortran());
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let coeffs: Vec<CmArray> = (0..9)
            .map(|_| CmArray::new(&mut m, 8, 8).unwrap())
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let before = m.persistent_used();
        let binding = StencilBinding::new(&compiled, &r, &[&x], &refs).unwrap();
        let plan = ExecutionPlan::build(
            &mut m,
            &binding,
            &ExecOptions::default(),
            PlanLifetime::Persistent,
        )
        .unwrap();
        assert!(m.persistent_used() > before);
        plan.release(&mut m);
        assert_eq!(m.persistent_used(), before);
    }

    #[test]
    fn rebind_retargets_result_source_and_coeffs() {
        let mut m = machine();
        let compiled = compile(&m, "R = C * CSHIFT(X, 2, 1) + 0.5 * X");
        let mk = |m: &mut Machine, seed: usize| {
            let a = CmArray::new(m, 8, 8).unwrap();
            a.fill_with(m, move |r, c| ((r * 5 + c * 3 + seed) % 17) as f32 * 0.25);
            a
        };
        let x1 = mk(&mut m, 1);
        let c1 = mk(&mut m, 2);
        let x2 = mk(&mut m, 3);
        let c2 = mk(&mut m, 4);
        let r1 = CmArray::new(&mut m, 8, 8).unwrap();
        let r2 = CmArray::new(&mut m, 8, 8).unwrap();
        let opts = ExecOptions::default();

        let binding = StencilBinding::new(&compiled, &r1, &[&x1], &[&c1]).unwrap();
        let mut plan =
            ExecutionPlan::build(&mut m, &binding, &opts, PlanLifetime::Persistent).unwrap();
        plan.execute(&mut m).unwrap();
        plan.rebind(&r2, &[&x2], &[&c2]).unwrap();
        let rebound = plan.execute(&mut m).unwrap();

        // A fresh convolve on the second argument set must agree exactly.
        let r_fresh = CmArray::new(&mut m, 8, 8).unwrap();
        let fresh = convolve(&mut m, &compiled, &r_fresh, &x2, &[&c2], &opts).unwrap();
        assert_eq!(rebound, fresh);
        assert_eq!(r2.gather(&m), r_fresh.gather(&m));

        // And rebinding back retargets cleanly (round trip).
        plan.rebind(&r1, &[&x1], &[&c1]).unwrap();
        plan.execute(&mut m).unwrap();
        let r_fresh1 = CmArray::new(&mut m, 8, 8).unwrap();
        convolve(&mut m, &compiled, &r_fresh1, &x1, &[&c1], &opts).unwrap();
        assert_eq!(r1.gather(&m), r_fresh1.gather(&m));
        plan.release(&mut m);
    }

    #[test]
    fn rebind_rejects_mismatched_shapes_and_counts() {
        let mut m = machine();
        let compiled = compile(&m, "R = C * X");
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let c = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let wrong = CmArray::new(&mut m, 8, 12).unwrap();
        let binding = StencilBinding::new(&compiled, &r, &[&x], &[&c]).unwrap();
        let mut plan = ExecutionPlan::build(
            &mut m,
            &binding,
            &ExecOptions::default(),
            PlanLifetime::Persistent,
        )
        .unwrap();
        assert!(matches!(
            plan.rebind(&wrong, &[&x], &[&c]),
            Err(RuntimeError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            plan.rebind(&r, &[&x], &[]),
            Err(RuntimeError::WrongCoeffCount { .. })
        ));
        assert!(matches!(
            plan.rebind(&r, &[], &[&c]),
            Err(RuntimeError::WrongSourceCount { .. })
        ));
        plan.release(&mut m);
    }

    #[test]
    fn lockstep_plan_matches_scalar_plan_bit_for_bit() {
        let mut m = machine();
        let compiled = compile(&m, &PaperPattern::Square9.fortran());
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill_with(&mut m, |r, c| ((r * 13 + c * 7) % 11) as f32 * 0.5 - 2.0);
        let coeffs: Vec<CmArray> = (0..9)
            .map(|i| {
                let a = CmArray::new(&mut m, 8, 8).unwrap();
                a.fill_with(&mut m, move |r, c| {
                    ((r * 3 + c * 5 + i) % 7) as f32 * 0.125 - 0.25
                });
                a
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r_scalar = CmArray::new(&mut m, 8, 8).unwrap();
        let r_lock = CmArray::new(&mut m, 8, 8).unwrap();

        let scalar_opts = ExecOptions::fast().with_engine(ExecEngine::Scalar);
        let b = StencilBinding::new(&compiled, &r_scalar, &[&x], &refs).unwrap();
        let mut scalar_plan =
            ExecutionPlan::build(&mut m, &b, &scalar_opts, PlanLifetime::Persistent).unwrap();
        assert!(!scalar_plan.uses_lockstep());
        let scalar_meas = scalar_plan.execute(&mut m).unwrap();

        let lock_opts = ExecOptions::fast().with_engine(ExecEngine::Lockstep);
        let b = StencilBinding::new(&compiled, &r_lock, &[&x], &refs).unwrap();
        let mut lock_plan =
            ExecutionPlan::build(&mut m, &b, &lock_opts, PlanLifetime::Persistent).unwrap();
        assert!(lock_plan.uses_lockstep());
        let lock_meas = lock_plan.execute(&mut m).unwrap();

        assert_eq!(scalar_meas, lock_meas);
        let want = r_scalar.gather(&m);
        let got = r_lock.gather(&m);
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        scalar_plan.release(&mut m);
        lock_plan.release(&mut m);
    }

    #[test]
    fn aliased_binding_falls_back_to_scalar() {
        let mut m = machine();
        let compiled = compile(&m, "R = C * X");
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill(&mut m, 2.0);
        let c = CmArray::new(&mut m, 8, 8).unwrap();
        c.fill(&mut m, 3.0);
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let opts = ExecOptions::fast();
        assert_eq!(opts.engine, ExecEngine::Lockstep);

        // Result aliased to the coefficient array: the lane mirror cannot
        // represent one buffer in two roles, so the plan must fall back —
        // and still compute the correct result through the scalar path.
        let b = StencilBinding::new(&compiled, &c, &[&x], &[&c]).unwrap();
        let mut plan = ExecutionPlan::build(&mut m, &b, &opts, PlanLifetime::Persistent).unwrap();
        assert!(!plan.uses_lockstep());
        plan.execute(&mut m).unwrap();
        assert_eq!(c.get(&m, 3, 3), 6.0);
        plan.release(&mut m);

        // A clean binding keeps the lockstep engine.
        let b = StencilBinding::new(&compiled, &r, &[&x], &[&c]).unwrap();
        let plan = ExecutionPlan::build(&mut m, &b, &opts, PlanLifetime::Persistent).unwrap();
        assert!(plan.uses_lockstep());
        plan.release(&mut m);
    }

    #[test]
    fn rebind_keeps_lockstep_matching_fresh_convolve() {
        let mut m = machine();
        let compiled = compile(&m, "R = C * CSHIFT(X, 2, 1) + 0.5 * X");
        let mk = |m: &mut Machine, seed: usize| {
            let a = CmArray::new(m, 8, 8).unwrap();
            a.fill_with(m, move |r, c| ((r * 5 + c * 3 + seed) % 17) as f32 * 0.25);
            a
        };
        let x1 = mk(&mut m, 1);
        let c1 = mk(&mut m, 2);
        let x2 = mk(&mut m, 3);
        let c2 = mk(&mut m, 4);
        let r1 = CmArray::new(&mut m, 8, 8).unwrap();
        let r2 = CmArray::new(&mut m, 8, 8).unwrap();
        let opts = ExecOptions::fast();

        let binding = StencilBinding::new(&compiled, &r1, &[&x1], &[&c1]).unwrap();
        let mut plan =
            ExecutionPlan::build(&mut m, &binding, &opts, PlanLifetime::Persistent).unwrap();
        assert!(plan.uses_lockstep());
        plan.execute(&mut m).unwrap();
        plan.rebind(&r2, &[&x2], &[&c2]).unwrap();
        assert!(plan.uses_lockstep(), "rebind must keep the lane view");
        plan.execute(&mut m).unwrap();

        // Rebinding onto an aliased pair turns the engine off…
        plan.rebind(&c1, &[&x1], &[&c1]).unwrap();
        assert!(!plan.uses_lockstep());
        // …and a clean rebind turns it back on.
        plan.rebind(&r1, &[&x1], &[&c1]).unwrap();
        assert!(plan.uses_lockstep());
        plan.execute(&mut m).unwrap();

        let r_fresh = CmArray::new(&mut m, 8, 8).unwrap();
        convolve(
            &mut m,
            &compiled,
            &r_fresh,
            &x2,
            &[&c2],
            &ExecOptions::fast().with_engine(ExecEngine::Scalar),
        )
        .unwrap();
        assert_eq!(r2.gather(&m), r_fresh.gather(&m));
        let r_fresh1 = CmArray::new(&mut m, 8, 8).unwrap();
        convolve(
            &mut m,
            &compiled,
            &r_fresh1,
            &x1,
            &[&c1],
            &ExecOptions::fast().with_engine(ExecEngine::Scalar),
        )
        .unwrap();
        assert_eq!(r1.gather(&m), r_fresh1.gather(&m));
        plan.release(&mut m);
    }

    #[test]
    fn binding_validation_matches_convolve() {
        let mut m = machine();
        let compiled = compile(&m, "R = C1 * X + C2 * CSHIFT(X, 1, 1)");
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        assert!(matches!(
            StencilBinding::new(&compiled, &r, &[&x], &[]),
            Err(RuntimeError::WrongCoeffCount {
                expected: 2,
                got: 0
            })
        ));
        assert!(matches!(
            StencilBinding::new(&compiled, &r, &[], &[]),
            Err(RuntimeError::WrongSourceCount { .. })
        ));
    }
}
