//! The golden model: direct host-side evaluation of a stencil statement
//! with Fortran `CSHIFT`/`EOSHIFT` semantics.
//!
//! Accumulation follows the statement's term order — the same order the
//! compiled chains use — so compiled results are expected to match this
//! model *bit for bit*, not merely within a tolerance.

use cmcc_core::stencil::{Boundary, CoeffRef, Stencil};

/// A coefficient operand for the reference evaluator.
#[derive(Debug, Clone, Copy)]
pub enum CoeffValue<'a> {
    /// A full coefficient array, row-major `rows × cols`.
    Array(&'a [f32]),
    /// A scalar literal coefficient.
    Literal(f32),
}

impl CoeffValue<'_> {
    fn at(&self, idx: usize) -> f32 {
        match self {
            CoeffValue::Array(data) => data[idx],
            CoeffValue::Literal(v) => *v,
        }
    }
}

/// Evaluates a single-source `stencil` over the `rows × cols` array `x`
/// with coefficient operands `coeffs` (indexed by [`CoeffRef::Array`]).
///
/// # Panics
///
/// Panics if `x` is not `rows × cols`, a coefficient array has the wrong
/// length, a coefficient index is out of range, or the stencil shifts
/// more than one source.
pub fn reference_convolve(
    stencil: &Stencil,
    rows: usize,
    cols: usize,
    x: &[f32],
    coeffs: &[CoeffValue<'_>],
) -> Vec<f32> {
    reference_convolve_multi(stencil, rows, cols, &[x], coeffs)
}

/// Evaluates a (possibly multi-source) `stencil`: `sources[i]` backs the
/// taps with `source == i` — the §9 future-work extension.
///
/// # Panics
///
/// Panics if any array is not `rows × cols`, a coefficient index is out
/// of range, or `sources` is shorter than the stencil's source count.
pub fn reference_convolve_multi(
    stencil: &Stencil,
    rows: usize,
    cols: usize,
    sources: &[&[f32]],
    coeffs: &[CoeffValue<'_>],
) -> Vec<f32> {
    assert!(
        sources.len() >= stencil.source_count().max(1),
        "stencil shifts {} sources, {} supplied",
        stencil.source_count(),
        sources.len()
    );
    for x in sources {
        assert_eq!(x.len(), rows * cols, "source length mismatch");
    }
    for c in coeffs {
        if let CoeffValue::Array(data) = c {
            assert_eq!(data.len(), rows * cols, "coefficient length mismatch");
        }
    }
    let fetch = |s: u16, r: i64, c: i64| -> f32 {
        let x = sources[s as usize];
        match stencil.boundary() {
            Boundary::Circular => {
                let rr = r.rem_euclid(rows as i64) as usize;
                let cc = c.rem_euclid(cols as i64) as usize;
                x[rr * cols + cc]
            }
            Boundary::ZeroFill => {
                if r < 0 || c < 0 || r >= rows as i64 || c >= cols as i64 {
                    stencil.fill()
                } else {
                    x[r as usize * cols + c as usize]
                }
            }
        }
    };
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows as i64 {
        for c in 0..cols as i64 {
            let idx = r as usize * cols + c as usize;
            let mut acc = 0.0f32;
            for tap in stencil.taps() {
                let data = fetch(
                    tap.source,
                    r + tap.offset.drow as i64,
                    c + tap.offset.dcol as i64,
                );
                let k = match tap.coeff {
                    CoeffRef::Array(a) => coeffs[a].at(idx),
                    CoeffRef::Unit => 1.0,
                };
                acc += k * data;
            }
            for &a in stencil.bias() {
                acc += coeffs[a].at(idx);
            }
            out[idx] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcc_core::patterns::PaperPattern;
    use cmcc_core::stencil::Tap;

    #[test]
    fn identity_stencil_is_identity() {
        let s = Stencil::from_offsets([(0, 0)], Boundary::Circular).unwrap();
        let x: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let ones = vec![1.0f32; 12];
        let r = reference_convolve(&s, 3, 4, &x, &[CoeffValue::Array(&ones)]);
        assert_eq!(r, x);
    }

    #[test]
    fn cshift_wraps_circularly() {
        // R = 1.0 * CSHIFT(X, DIM=1, SHIFT=-1): R(r, c) = X(r-1, c).
        let s = Stencil::from_offsets([(-1, 0)], Boundary::Circular).unwrap();
        let x: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let r = reference_convolve(&s, 3, 3, &x, &[CoeffValue::Literal(1.0)]);
        // Row 0 reads row 2 (wraparound).
        assert_eq!(&r[0..3], &[6.0, 7.0, 8.0]);
        assert_eq!(&r[3..6], &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn eoshift_zero_fills() {
        let s = Stencil::from_offsets([(0, 1)], Boundary::ZeroFill).unwrap();
        let x: Vec<f32> = (1..=4).map(|i| i as f32).collect();
        let r = reference_convolve(&s, 2, 2, &x, &[CoeffValue::Literal(1.0)]);
        // R(r, c) = X(r, c+1); the last column reads beyond the edge.
        assert_eq!(r, vec![2.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn accumulation_is_term_ordered() {
        // With f32, (a + b) + c ≠ a + (b + c) in general; verify the
        // evaluator accumulates left to right over taps.
        let s = PaperPattern::Cross5.stencil();
        let x = vec![1.0e7f32, 1.0, -1.0e7, 3.0, 0.5, -2.0, 7.0, 11.0, 0.25];
        let coeffs: Vec<Vec<f32>> = (0..5).map(|i| vec![(i as f32 + 0.5) * 0.3; 9]).collect();
        let refs: Vec<CoeffValue<'_>> = coeffs.iter().map(|c| CoeffValue::Array(c)).collect();
        let got = reference_convolve(&s, 3, 3, &x, &refs);
        // Manual recomputation for element (1, 1).
        let mut want = 0.0f32;
        for (tap, k) in s.taps().iter().zip(0..) {
            let rr = (1 + tap.offset.drow) as usize;
            let cc = (1 + tap.offset.dcol) as usize;
            want += coeffs[k][4] * x[rr * 3 + cc];
        }
        assert_eq!(got[4].to_bits(), want.to_bits());
    }

    #[test]
    fn bias_terms_add_in() {
        let s = Stencil::new(vec![Tap::new(0, 0, 0)], vec![1], Boundary::Circular, 2).unwrap();
        let x = vec![2.0f32; 4];
        let r = reference_convolve(
            &s,
            2,
            2,
            &x,
            &[CoeffValue::Literal(3.0), CoeffValue::Literal(10.0)],
        );
        assert_eq!(r, vec![16.0; 4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_source_length_panics() {
        let s = Stencil::from_offsets([(0, 0)], Boundary::Circular).unwrap();
        let _ = reference_convolve(&s, 2, 2, &[0.0; 3], &[CoeffValue::Literal(1.0)]);
    }
}
