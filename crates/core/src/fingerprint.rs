//! Stable structural fingerprints for compiled stencils.
//!
//! The compile-once/run-many pipeline caches execution plans keyed by
//! *what was compiled* — the recognized statement and the kernels it
//! produced — so the key must be a deterministic function of structure
//! alone, independent of process, allocation addresses, or hash-map seed
//! randomization. This module provides that: a hand-rolled 64-bit
//! FNV-1a hash over a canonical byte encoding of [`StencilSpec`] and the
//! compiled kernel set.
//!
//! Two statements that recognize to the same spec (same target and
//! source names, same coefficients, same taps, same boundary and fill)
//! and compile to the same kernels share a fingerprint; any semantic
//! difference — including an `EOSHIFT` fill-value change, which alters
//! results without altering the tap pattern — produces a different one.

use crate::recognize::{CoeffSpec, StencilSpec};
use cmcc_cm2::isa::{DynamicPart, Kernel, MacAcc, MemRef, StaticPart};

/// An incremental 64-bit FNV-1a hasher.
///
/// FNV-1a is not cryptographic; it is used here as a stable, dependency-
/// free structural digest. Collisions between *different* stencils would
/// merely cause a spurious plan-cache hit to fail its rebind validation,
/// never a wrong result.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint(FNV_OFFSET)
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f32` by bit pattern (so `-0.0 ≠ 0.0` and every NaN
    /// payload is distinguished — bit-identity is the contract).
    pub fn write_f32(&mut self, v: f32) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

fn write_mem_ref(fp: &mut Fingerprint, mref: MemRef) {
    match mref {
        MemRef::Source { array, drow, dcol } => {
            fp.write(&[0]);
            fp.write_u64(u64::from(array));
            fp.write_i64(i64::from(drow));
            fp.write_i64(i64::from(dcol));
        }
        MemRef::Coeff { array, col } => {
            fp.write(&[1]);
            fp.write_u64(u64::from(array));
            fp.write_u64(u64::from(col));
        }
        MemRef::Result { col } => {
            fp.write(&[2]);
            fp.write_u64(u64::from(col));
        }
        MemRef::Ones => fp.write(&[3]),
        MemRef::Zeros => fp.write(&[4]),
    }
}

fn write_part(fp: &mut Fingerprint, part: &DynamicPart) {
    match *part {
        DynamicPart::Mac {
            coeff,
            data,
            acc,
            dest,
        } => {
            fp.write(&[0]);
            write_mem_ref(fp, coeff);
            fp.write(&[data.0]);
            match acc {
                MacAcc::Start(reg) => fp.write(&[0, reg.0]),
                MacAcc::Chain => fp.write(&[1]),
            }
            match dest {
                Some(reg) => fp.write(&[1, reg.0]),
                None => fp.write(&[0]),
            }
        }
        DynamicPart::Load { src, dest } => {
            fp.write(&[1]);
            write_mem_ref(fp, src);
            fp.write(&[dest.0]);
        }
        DynamicPart::Store { src, dest } => {
            fp.write(&[2]);
            fp.write(&[src.0]);
            write_mem_ref(fp, dest);
        }
        DynamicPart::Nop => fp.write(&[3]),
    }
}

/// Absorbs a compiled kernel's full structure.
pub(crate) fn write_kernel(fp: &mut Fingerprint, kernel: &Kernel) {
    match kernel.static_part {
        StaticPart::ChainedMac => fp.write(&[0]),
    }
    fp.write_u64(kernel.width as u64);
    fp.write_i64(i64::from(kernel.row_step));
    fp.write_u64(kernel.useful_flops_per_line);
    fp.write_u64(kernel.prologue.len() as u64);
    for part in &kernel.prologue {
        write_part(fp, part);
    }
    fp.write_u64(kernel.body.len() as u64);
    for line in &kernel.body {
        fp.write_u64(line.len() as u64);
        for part in line {
            write_part(fp, part);
        }
    }
}

impl StencilSpec {
    /// A stable structural fingerprint of the recognized statement:
    /// names, coefficients (literals by bit pattern), taps, bias terms,
    /// boundary kind, and `EOSHIFT` fill value.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(&self.target);
        fp.write_u64(self.sources.len() as u64);
        for source in &self.sources {
            fp.write_str(source);
        }
        fp.write_u64(self.coeffs.len() as u64);
        for coeff in &self.coeffs {
            match coeff {
                CoeffSpec::Named(name) => {
                    fp.write(&[0]);
                    fp.write_str(name);
                }
                CoeffSpec::Literal(v) => {
                    fp.write(&[1]);
                    fp.write_f32(*v);
                }
            }
        }
        let stencil = &self.stencil;
        fp.write_u64(stencil.taps().len() as u64);
        for tap in stencil.taps() {
            fp.write_i64(i64::from(tap.offset.drow));
            fp.write_i64(i64::from(tap.offset.dcol));
            match tap.coeff {
                crate::stencil::CoeffRef::Array(i) => {
                    fp.write(&[0]);
                    fp.write_u64(i as u64);
                }
                crate::stencil::CoeffRef::Unit => fp.write(&[1]),
            }
            fp.write_u64(u64::from(tap.source));
        }
        fp.write_u64(stencil.bias().len() as u64);
        for &b in stencil.bias() {
            fp.write_u64(b as u64);
        }
        match stencil.boundary() {
            crate::stencil::Boundary::Circular => fp.write(&[0]),
            crate::stencil::Boundary::ZeroFill => {
                fp.write(&[1]);
                fp.write_f32(stencil.fill());
            }
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::compiler::Compiler;

    const CROSS: &str = "R = C1 * CSHIFT (X, DIM=1, SHIFT=-1) \
                           + C2 * CSHIFT (X, DIM=2, SHIFT=-1) \
                           + C3 * X \
                           + C4 * CSHIFT (X, DIM=2, SHIFT=+1) \
                           + C5 * CSHIFT (X, DIM=1, SHIFT=+1)";

    #[test]
    fn identical_statements_share_a_fingerprint() {
        let a = Compiler::default().compile_assignment(CROSS).unwrap();
        let b = Compiler::default().compile_assignment(CROSS).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.spec().fingerprint(), b.spec().fingerprint());
    }

    #[test]
    fn different_statements_differ() {
        let a = Compiler::default().compile_assignment(CROSS).unwrap();
        let b = Compiler::default()
            .compile_assignment("R = 0.5 * X + 0.5 * CSHIFT(X, 2, 1)")
            .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn eoshift_fill_value_changes_the_fingerprint() {
        let zero = Compiler::default()
            .compile_assignment("R = 0.5 * EOSHIFT(X, 1, -1) + 0.5 * X")
            .unwrap();
        let one = Compiler::default()
            .compile_assignment("R = 0.5 * EOSHIFT(X, 1, -1, BOUNDARY=1.0) + 0.5 * X")
            .unwrap();
        assert_ne!(zero.fingerprint(), one.fingerprint());
        assert_ne!(zero.spec().fingerprint(), one.spec().fingerprint());
    }

    #[test]
    fn literal_coefficient_bits_matter() {
        let a = Compiler::default()
            .compile_assignment("R = 0.5 * X + 0.5 * CSHIFT(X, 2, 1)")
            .unwrap();
        let b = Compiler::default()
            .compile_assignment("R = 0.25 * X + 0.75 * CSHIFT(X, 2, 1)")
            .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn kernel_structure_is_hashed() {
        // Same statement, different compiler configuration → different
        // kernel set → different compiled fingerprint, same spec
        // fingerprint.
        let full = Compiler::default().compile_assignment(CROSS).unwrap();
        let narrow = Compiler::default()
            .with_widths([2, 1])
            .compile_assignment(CROSS)
            .unwrap();
        assert_eq!(full.spec().fingerprint(), narrow.spec().fingerprint());
        assert_ne!(full.fingerprint(), narrow.fingerprint());
    }
}
