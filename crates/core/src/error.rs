//! The compiler's error type.

use crate::recognize::RecognizeError;
use cmcc_front::error::ParseError;
use std::error::Error;
use std::fmt;

/// Anything that can go wrong between Fortran text and a compiled stencil.
///
/// The paper planned exactly this feedback path: "the presence of a
/// directive justifies the compiler in providing feedback to the user,
/// such as a warning if the statement could not be processed by this
/// technique after all (for lack of registers, for example)" (§6).
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The source text did not parse.
    Parse(ParseError),
    /// The statement parsed but is not in the convolution form.
    Recognize(RecognizeError),
    /// No strip width fits the register file — the stencil footprint is
    /// too large even at width 1.
    NoFeasibleWidth {
        /// Data registers the narrowest multistencil demands.
        needed: usize,
        /// Data registers available.
        available: usize,
    },
    /// A `SUBROUTINE` unit violated the expected shape (wrong declaration
    /// ranks, missing arguments, several assignments, …).
    Subroutine(String),
    /// Even the narrowest kernel set overflows the sequencer's scratch
    /// data memory ("a scarce resource", §5.2).
    ScratchOverflow {
        /// Entries the minimal kernel set demands.
        needed: usize,
        /// Entries available.
        capacity: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Recognize(e) => e.fmt(f),
            CompileError::NoFeasibleWidth { needed, available } => write!(
                f,
                "stencil cannot be compiled for lack of registers: even a width-1 \
                 multistencil needs {needed} data registers but only {available} are available"
            ),
            CompileError::Subroutine(msg) => write!(f, "unsupported subroutine shape: {msg}"),
            CompileError::ScratchOverflow { needed, capacity } => write!(
                f,
                "stencil cannot be compiled: even the narrowest kernels need {needed} \
                 sequencer scratch-memory entries but only {capacity} exist"
            ),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Parse(e) => Some(e),
            CompileError::Recognize(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<RecognizeError> for CompileError {
    fn from(e: RecognizeError) -> Self {
        CompileError::Recognize(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcc_front::span::Span;

    #[test]
    fn display_covers_all_variants() {
        let p = CompileError::from(ParseError::new("bad token", Span::point(0)));
        assert!(p.to_string().contains("parse error"));
        let n = CompileError::NoFeasibleWidth {
            needed: 48,
            available: 31,
        };
        assert!(n.to_string().contains("lack of registers"));
        let s = CompileError::Subroutine("two assignments".into());
        assert!(s.to_string().contains("two assignments"));
    }

    #[test]
    fn source_chains_to_parse_error() {
        let e = CompileError::from(ParseError::new("oops", Span::point(3)));
        assert!(std::error::Error::source(&e).is_some());
        let n = CompileError::NoFeasibleWidth {
            needed: 1,
            available: 0,
        };
        assert!(std::error::Error::source(&n).is_none());
    }
}
