//! The Connection Machine Convolution Compiler: stencil recognition,
//! multistencil construction, ring-buffer register allocation, and kernel
//! scheduling.
//!
//! This crate is the paper's primary contribution (Bromley, Heller,
//! McNerney & Steele, *Fortran at Ten Gigaflops*, PLDI 1991): a compiler
//! module that pattern-matches Fortran 90 array assignment statements of
//! the sum-of-products form and compiles them into chained multiply-add
//! kernels for the CM-2's Weitek floating-point units.
//!
//! The pipeline:
//!
//! 1. [`mod@recognize`] — match the AST against the convolution form and
//!    build [`stencil::Stencil`] IR;
//! 2. [`multistencil`] — compute the footprint of `w` side-by-side
//!    stencil instances (tried at widths 8, 4, 2, 1);
//! 3. [`columns`] — size one register ring buffer per multistencil
//!    column (equalize to the tallest column, compress smallest-first
//!    under register pressure; the kernel unrolls LCM(ring sizes) lines);
//! 4. [`regalloc`] — assign the 32 physical registers: `r0 ≡ 0.0`,
//!    `r1 ≡ 1.0` when needed, result accumulators recycled from the
//!    registers of the *tagged* (bottom-left) data elements;
//! 5. [`schedule`] — emit per-line dynamic instruction parts: leading-edge
//!    loads, interleaved multiply-add pairs, drain bubbles, stores;
//! 6. [`compiler`] — the driver tying it together, producing a
//!    [`compiler::CompiledStencil`] with one kernel pair per workable
//!    width.
//!
//! # Examples
//!
//! ```
//! use cmcc_core::Compiler;
//!
//! let compiled = Compiler::default().compile_assignment(
//!     "R = C1 * CSHIFT(X, DIM=1, SHIFT=-1) \
//!        + C2 * CSHIFT(X, DIM=2, SHIFT=-1) \
//!        + C3 * X \
//!        + C4 * CSHIFT(X, DIM=2, SHIFT=+1) \
//!        + C5 * CSHIFT(X, DIM=1, SHIFT=+1)",
//! )?;
//! // The 5-point cross compiles at every width the paper attempts.
//! assert_eq!(compiled.widths(), vec![8, 4, 2, 1]);
//! # Ok::<(), cmcc_core::CompileError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod columns;
pub mod compiler;
pub mod error;
pub mod fingerprint;
pub mod multistencil;
pub mod offset;
pub mod patterns;
pub mod pictogram;
pub mod program;
pub mod recognize;
pub mod regalloc;
pub mod schedule;
pub mod stencil;
pub mod unparse;

pub use compiler::{CompiledStencil, Compiler, StripKernel};
pub use error::CompileError;
pub use fingerprint::Fingerprint;
pub use offset::{Borders, Offset};
pub use patterns::PaperPattern;
pub use program::{compile_program, ProgramUnit, UnitOutcome, Warning};
pub use recognize::{recognize, recognize_extended, CoeffSpec, StencilSpec};
pub use regalloc::Walk;
pub use schedule::KernelInfo;
pub use stencil::{Boundary, CoeffRef, Stencil, Tap};
pub use unparse::{unparse_spec, unparse_stencil};
