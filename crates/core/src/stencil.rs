//! The stencil intermediate representation.
//!
//! A [`Stencil`] is the recognizer's output and the compiler's input: an
//! ordered list of *taps* (offset × coefficient products), optional *bias*
//! terms (a bare coefficient added in), the boundary discipline
//! (`CSHIFT` = circular, `EOSHIFT` = end-off zero fill), and derived
//! geometry (border widths, flop counts).
//!
//! Tap order is semantically significant: it is the accumulation order of
//! the chained multiply-adds, and the reference evaluator mirrors it so
//! compiled results match the golden model bit for bit.

use crate::offset::{Borders, Offset};
use std::fmt;

/// What multiplies the shifted data element of a tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoeffRef {
    /// Coefficient array `index` (into [`crate::recognize::StencilSpec::coeffs`] /
    /// the run-time coefficient list), streamed from memory.
    Array(usize),
    /// No coefficient: a bare `s(x)` term. Executed as a multiply by a
    /// streamed `1.0` (the "ones page"), since one multiplier operand must
    /// come from memory; the multiply is not counted as a useful flop.
    Unit,
}

/// One product term `coeff * source(position + offset)`.
///
/// `source` selects which shifted array the tap reads. The paper requires
/// a single source per statement; the multi-source extension (its §9
/// future work — "handle all ten terms as one stencil pattern") allows
/// several, and single-source constructors simply use source 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tap {
    /// Where the term reads its source array.
    pub offset: Offset,
    /// What it multiplies by.
    pub coeff: CoeffRef,
    /// Which source array the term shifts (0 for single-source stencils).
    pub source: u16,
}

impl Tap {
    /// A tap on source 0 with a coefficient array.
    pub fn new(drow: i32, dcol: i32, coeff: usize) -> Self {
        Tap {
            offset: Offset::new(drow, dcol),
            coeff: CoeffRef::Array(coeff),
            source: 0,
        }
    }

    /// A bare `s(x)` tap on source 0 (unit coefficient).
    pub fn unit(drow: i32, dcol: i32) -> Self {
        Tap {
            offset: Offset::new(drow, dcol),
            coeff: CoeffRef::Unit,
            source: 0,
        }
    }

    /// A tap on an explicit source array.
    pub fn on_source(source: u16, drow: i32, dcol: i32, coeff: usize) -> Self {
        Tap {
            offset: Offset::new(drow, dcol),
            coeff: CoeffRef::Array(coeff),
            source,
        }
    }
}

/// Boundary handling for the whole statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Boundary {
    /// `CSHIFT`: the array wraps circularly ("Notice the wraparound effect
    /// that occurs because the shifts are circular", §2).
    #[default]
    Circular,
    /// `EOSHIFT`: zeros shift in at the array ends.
    ZeroFill,
}

/// A recognized stencil: the compiler's source of truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Stencil {
    taps: Vec<Tap>,
    /// Bias terms: coefficient array indices added in without a data
    /// element (`… + C`), executed as `C * 1.0` with the reserved
    /// 1.0 register as the register operand.
    bias: Vec<usize>,
    boundary: Boundary,
    /// The value shifted in at array ends under [`Boundary::ZeroFill`]
    /// (Fortran's `EOSHIFT(…, BOUNDARY=v)`; defaults to 0.0). Unused for
    /// circular shifts.
    fill: f32,
    coeff_count: usize,
    source_count: usize,
}

/// Error building a structurally invalid stencil.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidStencil(String);

impl fmt::Display for InvalidStencil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid stencil: {}", self.0)
    }
}

impl std::error::Error for InvalidStencil {}

impl Stencil {
    /// Builds a stencil from its parts.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidStencil`] when the stencil has no terms at all,
    /// or a coefficient index is out of range of `coeff_count`.
    pub fn new(
        taps: Vec<Tap>,
        bias: Vec<usize>,
        boundary: Boundary,
        coeff_count: usize,
    ) -> Result<Self, InvalidStencil> {
        if taps.is_empty() && bias.is_empty() {
            return Err(InvalidStencil("a stencil needs at least one term".into()));
        }
        for tap in &taps {
            if let CoeffRef::Array(i) = tap.coeff {
                if i >= coeff_count {
                    return Err(InvalidStencil(format!(
                        "tap coefficient index {i} out of range ({coeff_count} arrays)"
                    )));
                }
            }
        }
        if let Some(&i) = bias.iter().find(|&&i| i >= coeff_count) {
            return Err(InvalidStencil(format!(
                "bias coefficient index {i} out of range ({coeff_count} arrays)"
            )));
        }
        let source_count = taps
            .iter()
            .map(|t| t.source as usize + 1)
            .max()
            .unwrap_or(0)
            .max(usize::from(!taps.is_empty()));
        Ok(Stencil {
            taps,
            bias,
            boundary,
            fill: 0.0,
            coeff_count,
            source_count,
        })
    }

    /// Sets the end-off fill value (Fortran's `EOSHIFT(…, BOUNDARY=v)`).
    /// Meaningful only under [`Boundary::ZeroFill`].
    pub fn with_fill(mut self, fill: f32) -> Self {
        self.fill = fill;
        self
    }

    /// Builds a stencil with one distinct coefficient array per offset, in
    /// order — the common shape of the paper's examples.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidStencil`] if `offsets` is empty.
    pub fn from_offsets(
        offsets: impl IntoIterator<Item = (i32, i32)>,
        boundary: Boundary,
    ) -> Result<Self, InvalidStencil> {
        let taps: Vec<Tap> = offsets
            .into_iter()
            .enumerate()
            .map(|(i, (dr, dc))| Tap::new(dr, dc, i))
            .collect();
        let n = taps.len();
        Stencil::new(taps, Vec::new(), boundary, n)
    }

    /// The product taps, in accumulation order.
    pub fn taps(&self) -> &[Tap] {
        &self.taps
    }

    /// Bias (bare-coefficient) term indices, in accumulation order after
    /// the taps.
    pub fn bias(&self) -> &[usize] {
        &self.bias
    }

    /// The boundary discipline.
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// The end-off fill value (0.0 unless `BOUNDARY=` overrode it).
    pub fn fill(&self) -> f32 {
        self.fill
    }

    /// Number of coefficient arrays referenced.
    pub fn coeff_count(&self) -> usize {
        self.coeff_count
    }

    /// Number of distinct source arrays shifted (1 for the paper's form;
    /// more under the multi-source extension; 0 for pure-bias stencils).
    pub fn source_count(&self) -> usize {
        self.source_count
    }

    /// Whether the stencil shifts more than one source array.
    pub fn is_multi_source(&self) -> bool {
        self.source_count > 1
    }

    /// Number of chained multiply-add steps per result point (taps plus
    /// bias terms; this is the chain length, not the useful-flop count).
    pub fn chain_len(&self) -> usize {
        self.taps.len() + self.bias.len()
    }

    /// Whether the reserved `1.0` register is needed (only bias terms use
    /// it; §5.3).
    pub fn needs_one_register(&self) -> bool {
        !self.bias.is_empty()
    }

    /// Border widths of the tap footprint.
    pub fn borders(&self) -> Borders {
        Borders::of(self.taps.iter().map(|t| &t.offset))
    }

    /// Whether any tap is diagonal, requiring the corner-exchange step of
    /// the halo protocol (§5.1: "For some common stencil patterns ... the
    /// third step may be omitted").
    pub fn needs_corner_exchange(&self) -> bool {
        self.taps.iter().any(|t| t.offset.is_diagonal())
    }

    /// Useful floating-point operations per result point, by the paper's
    /// counting rule (§7): one multiply per coefficient×data tap, one add
    /// per term beyond the first; unit-coefficient multiplies and the
    /// initial add-to-zero are *not* counted. The 5-point cross therefore
    /// counts 9 (5 multiplies + 4 adds).
    pub fn useful_flops_per_point(&self) -> u64 {
        let multiplies = self
            .taps
            .iter()
            .filter(|t| matches!(t.coeff, CoeffRef::Array(_)))
            .count() as u64;
        let terms = self.chain_len() as u64;
        multiplies + terms.saturating_sub(1)
    }

    /// Distinct cells of the tap footprint, ignoring sources (several
    /// taps may share an offset; used for pictograms and border math).
    pub fn footprint(&self) -> Vec<Offset> {
        let mut cells: Vec<Offset> = self.taps.iter().map(|t| t.offset).collect();
        cells.sort();
        cells.dedup();
        cells
    }

    /// Distinct `(source, offset)` cells — each is one resident data
    /// element per multistencil instance.
    pub fn sourced_footprint(&self) -> Vec<(u16, Offset)> {
        let mut cells: Vec<(u16, Offset)> =
            self.taps.iter().map(|t| (t.source, t.offset)).collect();
        cells.sort();
        cells.dedup();
        cells
    }

    /// The *tagged* cell: the leftmost tap position of the edge row in the
    /// direction of travel. Processing northward recycles the bottommost
    /// row ("In practice we always choose the bottommost row", §5.3); a
    /// southward kernel tags the topmost row instead.
    ///
    /// Returns `None` for a stencil with no taps (pure bias).
    pub fn tagged_cell(&self, northward: bool) -> Option<Offset> {
        self.tagged_sourced_cell(northward).map(|(_, o)| o)
    }

    /// The tagged cell together with the source it belongs to: among all
    /// taps, the edge row in the direction of travel, then the leftmost
    /// column of that row; ties between sources resolve to the lowest
    /// source index. The recycling argument is per source plane, so the
    /// register holding this element is dead for every later result.
    pub fn tagged_sourced_cell(&self, northward: bool) -> Option<(u16, Offset)> {
        let edge_row = if northward {
            self.taps.iter().map(|t| t.offset.drow).max()?
        } else {
            self.taps.iter().map(|t| t.offset.drow).min()?
        };
        let in_row = self.taps.iter().filter(|t| t.offset.drow == edge_row);
        let col = in_row.clone().map(|t| t.offset.dcol).min()?;
        let source = self
            .taps
            .iter()
            .filter(|t| t.offset.drow == edge_row && t.offset.dcol == col)
            .map(|t| t.source)
            .min()?;
        Some((source, Offset::new(edge_row, col)))
    }
}

impl fmt::Display for Stencil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stencil of {} taps + {} bias terms, borders {}, {:?}",
            self.taps.len(),
            self.bias.len(),
            self.borders(),
            self.boundary
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross5() -> Stencil {
        // Paper §2: the five-point cross, taps in statement order.
        Stencil::from_offsets(
            [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)],
            Boundary::Circular,
        )
        .unwrap()
    }

    #[test]
    fn cross_counts_nine_flops() {
        // §7: the 5-point cross "is counted as 9 floating-point operations
        // (5 multiplies and 4 adds)".
        assert_eq!(cross5().useful_flops_per_point(), 9);
    }

    #[test]
    fn unit_taps_do_not_count_multiplies() {
        let s = Stencil::new(
            vec![Tap::unit(0, 0), Tap::new(0, 1, 0)],
            vec![],
            Boundary::Circular,
            1,
        )
        .unwrap();
        // 1 multiply (the array tap) + 1 add.
        assert_eq!(s.useful_flops_per_point(), 2);
    }

    #[test]
    fn bias_terms_count_adds_and_need_the_one_register() {
        let s = Stencil::new(vec![Tap::new(0, 0, 0)], vec![1], Boundary::Circular, 2).unwrap();
        assert_eq!(s.useful_flops_per_point(), 2); // 1 mult + 1 add
        assert!(s.needs_one_register());
        assert_eq!(s.chain_len(), 2);
        assert!(!cross5().needs_one_register());
    }

    #[test]
    fn empty_stencil_rejected() {
        assert!(Stencil::new(vec![], vec![], Boundary::Circular, 0).is_err());
    }

    #[test]
    fn out_of_range_coefficients_rejected() {
        assert!(Stencil::new(vec![Tap::new(0, 0, 5)], vec![], Boundary::Circular, 1).is_err());
        assert!(Stencil::new(vec![Tap::new(0, 0, 0)], vec![3], Boundary::Circular, 1).is_err());
    }

    #[test]
    fn corner_exchange_needed_only_for_diagonal_taps() {
        assert!(!cross5().needs_corner_exchange());
        let square =
            Stencil::from_offsets([(-1, -1), (-1, 0), (0, 0), (1, 1)], Boundary::Circular).unwrap();
        assert!(square.needs_corner_exchange());
    }

    #[test]
    fn tagged_cell_is_bottom_left_for_northward() {
        // §5.3: "Choose any row and label the leftmost position ... In
        // practice we always choose the bottommost row."
        assert_eq!(cross5().tagged_cell(true), Some(Offset::new(1, 0)));
        assert_eq!(cross5().tagged_cell(false), Some(Offset::new(-1, 0)));
        let square = Stencil::from_offsets(
            [(-1, -1), (-1, 0), (-1, 1), (1, -1), (1, 0), (1, 1)],
            Boundary::Circular,
        )
        .unwrap();
        assert_eq!(square.tagged_cell(true), Some(Offset::new(1, -1)));
        assert_eq!(square.tagged_cell(false), Some(Offset::new(-1, -1)));
    }

    #[test]
    fn footprint_dedups_shared_offsets() {
        let s = Stencil::new(
            vec![Tap::new(0, 0, 0), Tap::new(0, 0, 1), Tap::new(0, 1, 0)],
            vec![],
            Boundary::Circular,
            2,
        )
        .unwrap();
        assert_eq!(s.footprint().len(), 2);
    }

    #[test]
    fn borders_of_cross() {
        let b = cross5().borders();
        assert_eq!((b.north, b.south, b.east, b.west), (1, 1, 1, 1));
    }

    #[test]
    fn display_is_informative() {
        let text = cross5().to_string();
        assert!(text.contains("5 taps"));
        assert!(text.contains("Circular"));
    }
}
