//! Ring-buffer planning: sizing one register ring per multistencil column.
//!
//! "The solution is to treat separately each column of the multistencil.
//! Instead of having a ring buffer of five rows ... the compiler treats
//! each column as a separate ring buffer" (§5.4). Each line of a
//! half-strip loads one *leading edge* element per column into the next
//! slot of that column's ring; the rings rotate at different rates, so the
//! register-access pattern repeats with period LCM(sizes) — the unroll
//! factor of the compiled kernel.
//!
//! Sizing strategy (§5.4): "The strategy is to try to keep each ring
//! buffer equal in size to the maximum column size, except for columns of
//! height 1, because reducing a ring buffer to size 1 always saves
//! registers and never makes the LCM larger. If this uses too many
//! registers, then the compiler slowly compresses the columns, from
//! smallest to largest, from their too-large size to their natural size."

use crate::multistencil::{ColumnSpan, Multistencil};
use std::fmt;

/// One planned ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingSpec {
    /// The multistencil column this ring serves.
    pub span: ColumnSpan,
    /// The chosen ring size (`span.height() ..= max column height`).
    pub size: usize,
}

/// A complete ring plan for one multistencil.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingPlan {
    rings: Vec<RingSpec>,
    unroll: usize,
}

/// The multistencil does not fit the register budget even with
/// natural-size rings, or its unroll factor exceeds the sequencer's
/// scratch memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// Register demand exceeds the budget at this width.
    NotEnoughRegisters {
        /// Registers required by natural-size rings.
        needed: usize,
        /// Registers available for data elements.
        available: usize,
    },
    /// The best feasible plan's unroll factor exceeds `max_unroll`.
    UnrollTooLarge {
        /// The smallest achievable LCM within the register budget.
        unroll: usize,
        /// The configured cap.
        max_unroll: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NotEnoughRegisters { needed, available } => write!(
                f,
                "multistencil needs {needed} data registers but only {available} are available"
            ),
            PlanError::UnrollTooLarge { unroll, max_unroll } => write!(
                f,
                "ring plan unrolls {unroll} lines, exceeding the scratch-memory cap of {max_unroll}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl RingPlan {
    /// The rings, left to right by column.
    pub fn rings(&self) -> &[RingSpec] {
        &self.rings
    }

    /// The kernel unroll factor: LCM of all ring sizes.
    pub fn unroll(&self) -> usize {
        self.unroll
    }

    /// Total data registers consumed.
    pub fn registers_used(&self) -> usize {
        self.rings.iter().map(|r| r.size).sum()
    }

    /// The ring serving multistencil column `dcol`, if occupied.
    pub fn ring_for(&self, dcol: i32) -> Option<&RingSpec> {
        self.rings.iter().find(|r| r.span.dcol == dcol)
    }
}

/// Plans ring buffers for `ms` within `budget` data registers, keeping the
/// unroll factor at or below `max_unroll`.
///
/// # Errors
///
/// Returns [`PlanError::NotEnoughRegisters`] when even natural-size rings
/// exceed the budget (the caller then tries a narrower multistencil, §5.3),
/// or [`PlanError::UnrollTooLarge`] when every feasible plan unrolls more
/// lines than the scratch-memory cap allows.
pub fn plan_rings(
    ms: &Multistencil,
    budget: usize,
    max_unroll: usize,
) -> Result<RingPlan, PlanError> {
    let columns = ms.columns();
    let natural: usize = columns.iter().map(ColumnSpan::height).sum();
    if natural > budget {
        return Err(PlanError::NotEnoughRegisters {
            needed: natural,
            available: budget,
        });
    }
    let max_height = columns.iter().map(ColumnSpan::height).max().unwrap_or(1);

    // Start from the equalized plan: every ring at max height, except
    // height-1 columns which stay at 1.
    let mut sizes: Vec<usize> = columns
        .iter()
        .map(|c| if c.height() == 1 { 1 } else { max_height })
        .collect();

    // Compress columns from smallest natural height to largest until the
    // plan fits the budget.
    let mut order: Vec<usize> = (0..columns.len()).collect();
    order.sort_by_key(|&i| columns[i].height());
    let mut cursor = 0;
    while sizes.iter().sum::<usize>() > budget {
        let i = order[cursor];
        sizes[i] = columns[i].height();
        cursor += 1;
    }

    let mut unroll = sizes.iter().copied().fold(1, lcm);
    if unroll > max_unroll {
        // Fall back to fully natural sizes; occasionally (mixed heights
        // with a shared factor) this yields a smaller LCM than the padded
        // plan.
        let natural_sizes: Vec<usize> = columns.iter().map(ColumnSpan::height).collect();
        let natural_unroll = natural_sizes.iter().copied().fold(1, lcm);
        if natural_unroll <= max_unroll {
            sizes = natural_sizes;
            unroll = natural_unroll;
        } else {
            return Err(PlanError::UnrollTooLarge {
                unroll: unroll.min(natural_unroll),
                max_unroll,
            });
        }
    }

    let rings = columns
        .iter()
        .zip(&sizes)
        .map(|(&span, &size)| RingSpec { span, size })
        .collect();
    Ok(RingPlan { rings, unroll })
}

/// Least common multiple.
pub fn lcm(a: usize, b: usize) -> usize {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Greatest common divisor.
pub fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{Boundary, Stencil};

    fn diamond13() -> Stencil {
        let mut offsets = Vec::new();
        for dr in -2i32..=2 {
            for dc in -2i32..=2 {
                if dr.abs() + dc.abs() <= 2 {
                    offsets.push((dr, dc));
                }
            }
        }
        Stencil::from_offsets(offsets, Boundary::Circular).unwrap()
    }

    fn cross5() -> Stencil {
        Stencil::from_offsets(
            [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)],
            Boundary::Circular,
        )
        .unwrap()
    }

    #[test]
    fn lcm_gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(5, 3), 15);
        assert_eq!(lcm(1, 7), 7);
        assert_eq!(lcm(0, 7), 0);
    }

    #[test]
    fn paper_diamond_width4_compressed_plan() {
        // §5.4: natural heights 1,3,5,5,5,5,3,1. Equalization pads the
        // 3-columns to 5 (1-columns never pad); under a 31-register
        // budget one 3-column compresses back, giving ring sizes of 5, 3
        // and 1 with LCM 15.
        let ms = Multistencil::new(&diamond13(), 4);
        let plan = plan_rings(&ms, 31, 512).unwrap();
        assert_eq!(plan.registers_used(), 30);
        let sizes: Vec<usize> = plan.rings().iter().map(|r| r.size).collect();
        assert_eq!(sizes, vec![1, 3, 5, 5, 5, 5, 5, 1]);
        assert_eq!(plan.unroll(), 15);

        // With a budget of exactly the natural demand, every padded
        // column compresses to its natural height — the paper's
        // 28-register figure.
        let tight = plan_rings(&ms, 28, 512).unwrap();
        assert_eq!(tight.registers_used(), 28);
        let sizes: Vec<usize> = tight.rings().iter().map(|r| r.size).collect();
        assert_eq!(sizes, vec![1, 3, 5, 5, 5, 5, 3, 1]);
        assert_eq!(tight.unroll(), 15);
    }

    #[test]
    fn equalized_plan_when_budget_allows() {
        // Cross width 4: columns heights 1,3,3,3,3,1 (6 columns, natural
        // 14). Equalized: 1,3,3,3,3,1 — already equal to max except the
        // height-1 ends. Unroll = 3.
        let ms = Multistencil::new(&cross5(), 4);
        let plan = plan_rings(&ms, 31, 512).unwrap();
        let sizes: Vec<usize> = plan.rings().iter().map(|r| r.size).collect();
        assert_eq!(sizes, vec![1, 3, 3, 3, 3, 1]);
        assert_eq!(plan.unroll(), 3);
    }

    #[test]
    fn equalization_pads_shorter_columns_to_reduce_lcm() {
        // A stencil whose columns have heights 2 and 3 (LCM 6) gets the
        // height-2 ring padded to 3 when budget allows (LCM 3).
        let s = Stencil::from_offsets(
            [(-1, 0), (0, 0), (1, 0), (0, 1), (1, 1)],
            Boundary::Circular,
        )
        .unwrap();
        let ms = Multistencil::new(&s, 1);
        // columns: dcol 0 height 3, dcol 1 height 2.
        let plan = plan_rings(&ms, 31, 512).unwrap();
        let sizes: Vec<usize> = plan.rings().iter().map(|r| r.size).collect();
        assert_eq!(sizes, vec![3, 3]);
        assert_eq!(plan.unroll(), 3);

        // With a budget of exactly 5, the smaller column compresses back
        // to its natural height and the LCM grows to 6.
        let tight = plan_rings(&ms, 5, 512).unwrap();
        let sizes: Vec<usize> = tight.rings().iter().map(|r| r.size).collect();
        assert_eq!(sizes, vec![3, 2]);
        assert_eq!(tight.unroll(), 6);
    }

    #[test]
    fn paper_diamond_width8_does_not_fit() {
        // §5.3: "A width-8 multistencil would require 48 registers."
        let ms = Multistencil::new(&diamond13(), 8);
        let err = plan_rings(&ms, 31, 512).unwrap_err();
        assert_eq!(
            err,
            PlanError::NotEnoughRegisters {
                needed: 48,
                available: 31
            }
        );
        assert!(err.to_string().contains("48"));
    }

    #[test]
    fn unroll_cap_is_enforced() {
        let ms = Multistencil::new(&diamond13(), 4);
        let err = plan_rings(&ms, 30, 8).unwrap_err();
        assert!(matches!(err, PlanError::UnrollTooLarge { unroll: 15, .. }));
    }

    #[test]
    fn height1_columns_never_pad() {
        let ms = Multistencil::new(&cross5(), 8);
        let plan = plan_rings(&ms, 31, 512).unwrap();
        for ring in plan.rings() {
            if ring.span.height() == 1 {
                assert_eq!(ring.size, 1);
            }
        }
    }

    #[test]
    fn ring_lookup_by_column() {
        let ms = Multistencil::new(&cross5(), 2);
        let plan = plan_rings(&ms, 31, 512).unwrap();
        assert!(plan.ring_for(-1).is_some());
        assert!(plan.ring_for(2).is_some());
        assert!(plan.ring_for(3).is_none());
    }
}
