//! Multistencils: the composite footprint of `w` side-by-side stencil
//! instances.
//!
//! "Placing eight copies of the pattern with their centers side by side
//! shows the total set of data array elements actually needed to compute
//! eight results ... We call this composite pattern a multistencil"
//! (§5.3). Loading each element of the multistencil once — instead of
//! once per result that uses it — is the central memory-bandwidth saving:
//! the width-8 multistencil of the 5-point cross spans 26 positions
//! rather than the naive 40 loads.

use crate::offset::Offset;
use crate::stencil::Stencil;
use std::collections::BTreeSet;

/// The footprint of `width` stencil instances at columns `0..width`.
///
/// Cells are keyed by `(source, offset)`: a multi-source stencil (the
/// paper's §9 future work) keeps one resident element per source per
/// position, and each source's columns get their own ring buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Multistencil {
    width: usize,
    cells: BTreeSet<(u16, Offset)>,
}

/// One column of a multistencil (within one source plane) and the rows
/// it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnSpan {
    /// Which source array's plane this column lives in.
    pub source: u16,
    /// The column (offset from the first result position).
    pub dcol: i32,
    /// Topmost occupied row.
    pub lo: i32,
    /// Bottommost occupied row.
    pub hi: i32,
}

impl ColumnSpan {
    /// The column height: number of rows between top and bottom
    /// inclusive. This is the *natural* ring-buffer size for the column
    /// (§5.4).
    pub fn height(&self) -> usize {
        (self.hi - self.lo + 1) as usize
    }
}

impl Multistencil {
    /// Builds the multistencil of `stencil` at `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the stencil has no taps.
    pub fn new(stencil: &Stencil, width: usize) -> Self {
        assert!(width > 0, "multistencil width must be nonzero");
        let footprint = stencil.sourced_footprint();
        assert!(
            !footprint.is_empty(),
            "cannot build a multistencil of a pure-bias stencil"
        );
        let mut cells = BTreeSet::new();
        for i in 0..width as i32 {
            for &(source, cell) in &footprint {
                cells.insert((source, Offset::new(cell.drow, cell.dcol + i)));
            }
        }
        Multistencil { width, cells }
    }

    /// The width this multistencil was built for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of distinct positions — the count of data elements that
    /// must be resident to compute one line of `width` results.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Whether the multistencil covers `offset` in source plane `source`.
    pub fn contains(&self, source: u16, offset: Offset) -> bool {
        self.cells.contains(&(source, offset))
    }

    /// All `(source, offset)` cells, ordered by source then position.
    pub fn cells(&self) -> impl Iterator<Item = (u16, Offset)> + '_ {
        self.cells.iter().copied()
    }

    /// The occupied columns, left to right, each with its row span.
    ///
    /// Gaps inside a column still count toward its span (the ring buffer
    /// streams every row between the column's top and bottom through its
    /// registers); columns with no cells at all are absent.
    pub fn columns(&self) -> Vec<ColumnSpan> {
        let mut spans: Vec<ColumnSpan> = Vec::new();
        for &(source, cell) in &self.cells {
            match spans
                .iter_mut()
                .find(|s| s.source == source && s.dcol == cell.dcol)
            {
                Some(span) => {
                    span.lo = span.lo.min(cell.drow);
                    span.hi = span.hi.max(cell.drow);
                }
                None => spans.push(ColumnSpan {
                    source,
                    dcol: cell.dcol,
                    lo: cell.drow,
                    hi: cell.drow,
                }),
            }
        }
        spans.sort_by_key(|s| (s.source, s.dcol));
        spans
    }

    /// Sum of all column heights: the register demand of natural-size
    /// ring buffers.
    pub fn natural_register_demand(&self) -> usize {
        self.columns().iter().map(ColumnSpan::height).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::Boundary;

    fn cross5() -> Stencil {
        Stencil::from_offsets(
            [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)],
            Boundary::Circular,
        )
        .unwrap()
    }

    fn diamond13() -> Stencil {
        let mut offsets = Vec::new();
        for dr in -2i32..=2 {
            for dc in -2i32..=2 {
                if dr.abs() + dc.abs() <= 2 {
                    offsets.push((dr, dc));
                }
            }
        }
        assert_eq!(offsets.len(), 13);
        Stencil::from_offsets(offsets, Boundary::Circular).unwrap()
    }

    #[test]
    fn paper_cross_width8_spans_26_positions() {
        // §5.3: "It spans only 26 array positions; therefore only 26 data
        // elements need be loaded in order to compute eight results."
        let ms = Multistencil::new(&cross5(), 8);
        assert_eq!(ms.cell_count(), 26);
    }

    #[test]
    fn paper_diamond_register_demands() {
        // §5.3: "A width-8 multistencil would require 48 registers, but
        // the width-4 multistencil requires only 28 registers."
        let d = diamond13();
        assert_eq!(Multistencil::new(&d, 8).natural_register_demand(), 48);
        assert_eq!(Multistencil::new(&d, 4).natural_register_demand(), 28);
        assert_eq!(Multistencil::new(&d, 4).cell_count(), 28);
    }

    #[test]
    fn paper_diamond_width4_column_heights() {
        // §5.4: "the first and last columns require only a single
        // register; the second and seventh columns require ring buffers of
        // three registers apiece; and the middle four columns require five
        // registers apiece."
        let ms = Multistencil::new(&diamond13(), 4);
        let heights: Vec<usize> = ms.columns().iter().map(ColumnSpan::height).collect();
        assert_eq!(heights, vec![1, 3, 5, 5, 5, 5, 3, 1]);
    }

    #[test]
    fn width1_multistencil_is_the_footprint() {
        let ms = Multistencil::new(&cross5(), 1);
        assert_eq!(ms.cell_count(), 5);
        assert!(ms.contains(0, Offset::new(-1, 0)));
        assert!(!ms.contains(0, Offset::new(-1, 1)));
    }

    #[test]
    fn cross_width8_columns() {
        let ms = Multistencil::new(&cross5(), 8);
        let cols = ms.columns();
        assert_eq!(cols.len(), 10); // dcol -1..=8
        assert_eq!(cols[0].dcol, -1);
        assert_eq!(cols[0].height(), 1); // west arm: middle row only
        assert_eq!(cols[1].height(), 3); // full span
        assert_eq!(cols[9].height(), 1); // east arm
    }

    #[test]
    fn gapped_columns_span_their_extremes() {
        // Taps at rows -2 and +2 in one column: the ring must span 5 rows
        // even though the middle three are unused.
        let s = Stencil::from_offsets([(-2, 0), (2, 0)], Boundary::Circular).unwrap();
        let ms = Multistencil::new(&s, 1);
        assert_eq!(ms.columns()[0].height(), 5);
        assert_eq!(ms.cell_count(), 2);
        assert_eq!(ms.natural_register_demand(), 5);
    }

    #[test]
    fn shared_offsets_counted_once() {
        let s = Stencil::new(
            vec![
                crate::stencil::Tap::new(0, 0, 0),
                crate::stencil::Tap::new(0, 0, 1),
            ],
            vec![],
            Boundary::Circular,
            2,
        )
        .unwrap();
        assert_eq!(Multistencil::new(&s, 4).cell_count(), 4);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_width_panics() {
        let _ = Multistencil::new(&cross5(), 0);
    }
}
