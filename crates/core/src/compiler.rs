//! The compiler driver: Fortran text (or stencil IR) in, per-width
//! kernels out.
//!
//! "We have found it practical for the compiler to attempt to construct
//! multistencils of width 8, 4, 2, and 1; it is all right if some of
//! these don't work. The idea is that the run-time library routine can
//! handle a subgrid of any size or shape simply by shaving off, at each
//! step, the widest strip for which the compiler managed to construct a
//! workable multistencil" (§5.3). [`CompiledStencil`] is that per-width
//! kernel table; [`CompiledStencil::widest_kernel_for`] is the shaving
//! rule.

use crate::columns::PlanError;
use crate::error::CompileError;
use crate::recognize::{recognize, recognize_extended, StencilSpec};
use crate::regalloc::Walk;
use crate::schedule::{emit_kernel_with, KernelInfo};
use crate::stencil::Stencil;
use cmcc_cm2::config::{MachineConfig, FPU_REGISTERS};
use cmcc_cm2::isa::Kernel;
use cmcc_cm2::sequencer::ScratchMemory;
use cmcc_front::parser::{parse_assignment, parse_subroutine};
use cmcc_front::sexp::parse_defstencil;

/// The kernels for one strip width, in both walk directions.
///
/// The two half-strips of a strip both start at a subgrid edge and work
/// toward the center (§5.2); the bottom half walks north and the top half
/// walks south, so each width carries a mirrored kernel pair.
#[derive(Debug, Clone, PartialEq)]
pub struct StripKernel {
    /// The strip width `w`.
    pub width: usize,
    /// Kernel walking north (bottom half-strip, edge→center).
    pub north: Kernel,
    /// Kernel walking south (top half-strip, edge→center).
    pub south: Kernel,
    /// Structural summary (identical for both directions).
    pub info: KernelInfo,
}

/// A fully compiled stencil statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStencil {
    spec: StencilSpec,
    kernels: Vec<StripKernel>,
    fingerprint: u64,
}

impl CompiledStencil {
    /// The recognized statement: names and stencil IR.
    pub fn spec(&self) -> &StencilSpec {
        &self.spec
    }

    /// A stable structural fingerprint of the compilation: the spec
    /// fingerprint combined with the full kernel set (widths, unroll
    /// patterns, instruction streams). Computed once at compile time;
    /// equal fingerprints mean interchangeable compilations, so this is
    /// the statement component of an execution-plan cache key.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The stencil IR.
    pub fn stencil(&self) -> &Stencil {
        &self.spec.stencil
    }

    /// The compiled kernels, widest first.
    pub fn kernels(&self) -> &[StripKernel] {
        &self.kernels
    }

    /// The workable strip widths, descending.
    pub fn widths(&self) -> Vec<usize> {
        self.kernels.iter().map(|k| k.width).collect()
    }

    /// The widest kernel not exceeding `remaining` columns — the run-time
    /// library's strip-shaving rule. Returns `None` when `remaining` is
    /// zero.
    pub fn widest_kernel_for(&self, remaining: usize) -> Option<&StripKernel> {
        self.kernels.iter().find(|k| k.width <= remaining)
    }

    /// Total sequencer scratch-memory entries across all kernels (the
    /// resource the unroll factor spends, §5.4).
    pub fn scratch_entries(&self) -> usize {
        self.kernels
            .iter()
            .map(|k| k.north.scratch_entries() + k.south.scratch_entries())
            .sum()
    }
}

/// The Connection Machine Convolution Compiler.
///
/// # Examples
///
/// ```
/// use cmcc_core::compiler::Compiler;
///
/// let compiler = Compiler::default();
/// let compiled = compiler.compile_assignment(
///     "R = C1 * CSHIFT(X, 1, -1) + C2 * X + C3 * CSHIFT(X, 1, +1)",
/// )?;
/// assert_eq!(compiled.widths(), vec![8, 4, 2, 1]);
/// # Ok::<(), cmcc_core::error::CompileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    cfg: MachineConfig,
    widths: Vec<usize>,
    max_unroll: usize,
    scratch: ScratchMemory,
    paired: bool,
}

impl Compiler {
    /// A compiler for the given machine, attempting the paper's widths
    /// 8, 4, 2, 1.
    pub fn new(cfg: MachineConfig) -> Self {
        Compiler {
            cfg,
            widths: vec![8, 4, 2, 1],
            max_unroll: 512,
            scratch: ScratchMemory::default(),
            paired: true,
        }
    }

    /// Disables the paired-results interleave (the §5.3 two-thread
    /// discipline) — the pairing ablation's counterfactual, at half the
    /// multiply-add throughput.
    pub fn with_paired_results(mut self, paired: bool) -> Self {
        self.paired = paired;
        self
    }

    /// Overrides the sequencer scratch-memory budget (the resource loop
    /// unrolling spends, §5.4). Widths are dropped, narrowest-but-one
    /// first, until the kernel set fits.
    pub fn with_scratch(mut self, scratch: ScratchMemory) -> Self {
        self.scratch = scratch;
        self
    }

    /// Overrides the candidate strip widths (sorted descending and
    /// deduplicated internally). Used by the width ablation.
    pub fn with_widths(mut self, widths: impl IntoIterator<Item = usize>) -> Self {
        let mut w: Vec<usize> = widths.into_iter().filter(|&w| w > 0).collect();
        w.sort_unstable_by(|a, b| b.cmp(a));
        w.dedup();
        self.widths = w;
        self
    }

    /// Caps the unroll factor (sequencer scratch-memory budget).
    pub fn with_max_unroll(mut self, max_unroll: usize) -> Self {
        self.max_unroll = max_unroll.max(1);
        self
    }

    /// The machine configuration this compiler targets.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Compiles recognized stencil IR into kernels.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::NoFeasibleWidth`] when no candidate width
    /// fits the register file.
    pub fn compile(&self, spec: StencilSpec) -> Result<CompiledStencil, CompileError> {
        let mut kernels: Vec<StripKernel> = Vec::new();
        let mut narrowest_failure: Option<(usize, usize)> = None;
        for &width in &self.widths {
            match (
                emit_kernel_with(
                    &spec.stencil,
                    width,
                    Walk::North,
                    &self.cfg,
                    self.max_unroll,
                    self.paired,
                ),
                emit_kernel_with(
                    &spec.stencil,
                    width,
                    Walk::South,
                    &self.cfg,
                    self.max_unroll,
                    self.paired,
                ),
            ) {
                (Ok((north, info)), Ok((south, _))) => kernels.push(StripKernel {
                    width,
                    north,
                    south,
                    info,
                }),
                (Err(e), _) | (_, Err(e)) => {
                    if let PlanError::NotEnoughRegisters { needed, available } = e {
                        narrowest_failure = Some((needed, available));
                    }
                }
            }
        }
        if kernels.is_empty() {
            let (needed, available) =
                narrowest_failure.unwrap_or((FPU_REGISTERS, FPU_REGISTERS - 1));
            return Err(CompileError::NoFeasibleWidth { needed, available });
        }
        // Fit the kernel set into the sequencer's scratch data memory:
        // every width's pair of kernels is resident during a call. Widths
        // are dropped narrowest-but-one first — the widest kernel carries
        // the throughput, width 1 guarantees coverage of any subgrid.
        loop {
            let demand = self
                .scratch
                .check(kernels.iter().flat_map(|k| [&k.north, &k.south]));
            match demand {
                Ok(_) => break,
                Err(overflow) => {
                    // Candidate to drop: the narrowest width above 1; if
                    // only {1} or a single width remains, give up.
                    let victim = kernels
                        .iter()
                        .rposition(|k| k.width != 1)
                        .filter(|_| kernels.len() > 1);
                    match victim {
                        Some(i) => {
                            kernels.remove(i);
                        }
                        None => {
                            return Err(CompileError::ScratchOverflow {
                                needed: overflow.needed,
                                capacity: overflow.capacity,
                            })
                        }
                    }
                }
            }
        }
        let mut fp = crate::fingerprint::Fingerprint::new();
        fp.write_u64(spec.fingerprint());
        fp.write_u64(kernels.len() as u64);
        for k in &kernels {
            crate::fingerprint::write_kernel(&mut fp, &k.north);
            crate::fingerprint::write_kernel(&mut fp, &k.south);
        }
        Ok(CompiledStencil {
            spec,
            kernels,
            fingerprint: fp.finish(),
        })
    }

    /// Parses, recognizes, and compiles a single assignment statement.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`]: parse, recognize, or register exhaustion.
    pub fn compile_assignment(&self, source: &str) -> Result<CompiledStencil, CompileError> {
        let stmt = parse_assignment(source)?;
        let spec = recognize(&stmt)?;
        self.compile(spec)
    }

    /// Like [`Compiler::compile_assignment`], but admits shifts of
    /// several source arrays in one statement — the paper's §9 future
    /// work ("handle all ten terms as one stencil pattern"), fused into a
    /// single kernel.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`].
    pub fn compile_assignment_extended(
        &self,
        source: &str,
    ) -> Result<CompiledStencil, CompileError> {
        let stmt = parse_assignment(source)?;
        let spec = recognize_extended(&stmt)?;
        self.compile(spec)
    }

    /// Compiles a `SUBROUTINE` unit in the paper's second-implementation
    /// style: one stencil assignment isolated in a subroutine whose
    /// arguments are the result, source, and coefficient arrays.
    ///
    /// # Errors
    ///
    /// [`CompileError::Subroutine`] when the unit has anything other than
    /// one assignment, when referenced arrays are not rank-2 parameters,
    /// or any parse/recognize/register error.
    pub fn compile_subroutine(&self, source: &str) -> Result<CompiledStencil, CompileError> {
        let sub = parse_subroutine(source)?;
        let [stmt] = sub.body.as_slice() else {
            return Err(CompileError::Subroutine(format!(
                "expected exactly one assignment statement, found {}",
                sub.body.len()
            )));
        };
        let spec = recognize(stmt)?;
        // Every referenced array must be a rank-2 dummy argument.
        let mut names: Vec<&str> = vec![&spec.target];
        names.extend(spec.sources.iter().map(String::as_str));
        for coeff in &spec.coeffs {
            if let crate::recognize::CoeffSpec::Named(n) = coeff {
                names.push(n);
            }
        }
        for name in names {
            if !sub
                .params
                .iter()
                .any(|p| p.value.eq_ignore_ascii_case(name))
            {
                return Err(CompileError::Subroutine(format!(
                    "array `{name}` is not a dummy argument of {}",
                    sub.name.value
                )));
            }
            match sub.rank_of(name) {
                Some(2) => {}
                Some(r) => {
                    return Err(CompileError::Subroutine(format!(
                        "array `{name}` is declared with rank {r}, expected rank 2"
                    )))
                }
                None => {
                    return Err(CompileError::Subroutine(format!(
                        "array `{name}` has no type declaration"
                    )))
                }
            }
        }
        self.compile(spec)
    }

    /// Compiles a Lisp `defstencil` form (the paper's first
    /// implementation).
    ///
    /// # Errors
    ///
    /// Any [`CompileError`].
    pub fn compile_defstencil(&self, source: &str) -> Result<CompiledStencil, CompileError> {
        let def = parse_defstencil(source)?;
        let spec = recognize(&def.body)?;
        self.compile(spec)
    }
}

impl Default for Compiler {
    /// A compiler for the paper's 16-node measurement platform.
    fn default() -> Self {
        Compiler::new(MachineConfig::test_board_16())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CROSS: &str = "R = C1 * CSHIFT (X, DIM=1, SHIFT=-1) \
                           + C2 * CSHIFT (X, DIM=2, SHIFT=-1) \
                           + C3 * X \
                           + C4 * CSHIFT (X, DIM=2, SHIFT=+1) \
                           + C5 * CSHIFT (X, DIM=1, SHIFT=+1)";

    fn diamond_source() -> String {
        let mut terms = Vec::new();
        let mut i = 0;
        for dr in -2i32..=2 {
            for dc in -2i32..=2 {
                if dr.abs() + dc.abs() <= 2 {
                    i += 1;
                    terms.push(format!("C{i} * CSHIFT(CSHIFT(X, 1, {dr}), 2, {dc})"));
                }
            }
        }
        format!("R = {}", terms.join(" + "))
    }

    #[test]
    fn cross_compiles_at_all_widths() {
        let c = Compiler::default().compile_assignment(CROSS).unwrap();
        assert_eq!(c.widths(), vec![8, 4, 2, 1]);
        assert_eq!(c.stencil().useful_flops_per_point(), 9);
    }

    #[test]
    fn diamond_loses_width_8() {
        // §5.3: "the compiler would simply not generate code for the
        // width-8 case."
        let c = Compiler::default()
            .compile_assignment(&diamond_source())
            .unwrap();
        assert_eq!(c.widths(), vec![4, 2, 1]);
        let k4 = c.widest_kernel_for(21).unwrap();
        assert_eq!(k4.width, 4);
        // 30 data registers (one 3-column stays padded to 5) + r0.
        assert_eq!(k4.info.registers_used, 31);
        assert_eq!(k4.info.unroll, 15);
    }

    #[test]
    fn shaving_rule_picks_widest_fitting() {
        let c = Compiler::default().compile_assignment(CROSS).unwrap();
        assert_eq!(c.widest_kernel_for(21).unwrap().width, 8);
        assert_eq!(c.widest_kernel_for(7).unwrap().width, 4);
        assert_eq!(c.widest_kernel_for(3).unwrap().width, 2);
        assert_eq!(c.widest_kernel_for(1).unwrap().width, 1);
        assert!(c.widest_kernel_for(0).is_none());
    }

    #[test]
    fn huge_stencil_fails_with_register_feedback() {
        // A 1×41 row stencil: 41 cells even at width 1 > 31 registers.
        let terms: Vec<String> = (0..41)
            .map(|i| format!("C{i} * CSHIFT(X, 2, {})", i - 20))
            .collect();
        let err = Compiler::default()
            .compile_assignment(&format!("R = {}", terms.join(" + ")))
            .unwrap_err();
        let CompileError::NoFeasibleWidth { needed, available } = err else {
            panic!("expected register exhaustion, got {err}");
        };
        assert_eq!(needed, 41);
        assert_eq!(available, 31);
    }

    #[test]
    fn custom_widths_are_honored() {
        let c = Compiler::default()
            .with_widths([4, 4, 2])
            .compile_assignment(CROSS)
            .unwrap();
        assert_eq!(c.widths(), vec![4, 2]);
    }

    #[test]
    fn subroutine_paper_example_compiles() {
        let src = "
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY( :, : ) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
END
";
        let c = Compiler::default().compile_subroutine(src).unwrap();
        assert_eq!(c.spec().target, "R");
        assert_eq!(c.spec().coeffs.len(), 5);
    }

    #[test]
    fn subroutine_missing_declaration_rejected() {
        let src = "SUBROUTINE S (R, X, C)\nREAL, ARRAY(:,:) :: R, X\nR = C * X\nEND";
        let err = Compiler::default().compile_subroutine(src).unwrap_err();
        assert!(matches!(err, CompileError::Subroutine(_)), "{err}");
        assert!(err.to_string().contains("C"));
    }

    #[test]
    fn subroutine_wrong_rank_rejected() {
        let src =
            "SUBROUTINE S (R, X, C)\nREAL, ARRAY(:,:) :: R, X\nREAL, ARRAY(:) :: C\nR = C * X\nEND";
        let err = Compiler::default().compile_subroutine(src).unwrap_err();
        assert!(err.to_string().contains("rank 1"));
    }

    #[test]
    fn subroutine_nonparameter_array_rejected() {
        let src = "SUBROUTINE S (R, X)\nREAL, ARRAY(:,:) :: R, X, C\nR = C * X\nEND";
        let err = Compiler::default().compile_subroutine(src).unwrap_err();
        assert!(err.to_string().contains("dummy argument"));
    }

    #[test]
    fn subroutine_two_assignments_rejected() {
        let src =
            "SUBROUTINE S (R, Q, X, C)\nREAL, ARRAY(:,:) :: R, Q, X, C\nR = C * X\nQ = C * X\nEND";
        let err = Compiler::default().compile_subroutine(src).unwrap_err();
        assert!(err.to_string().contains("exactly one"));
    }

    #[test]
    fn defstencil_paper_example_compiles() {
        let src = "(defstencil cross (r x c1 c2 c3 c4 c5)
           (single-float single-float)
           (:= r (+ (* c1 (cshift x 1 -1))
                    (* c2 (cshift x 2 -1))
                    (* c3 x)
                    (* c4 (cshift x 2 +1))
                    (* c5 (cshift x 1 +1)))))";
        let c = Compiler::default().compile_defstencil(src).unwrap();
        assert_eq!(c.widths(), vec![8, 4, 2, 1]);
        assert_eq!(c.stencil().useful_flops_per_point(), 9);
    }

    #[test]
    fn scratch_accounting_is_positive_and_grows_with_unroll() {
        let cross = Compiler::default().compile_assignment(CROSS).unwrap();
        let diamond = Compiler::default()
            .compile_assignment(&diamond_source())
            .unwrap();
        assert!(cross.scratch_entries() > 0);
        // The diamond's width-4 kernel alone unrolls 15 lines.
        let d4 = diamond.widest_kernel_for(4).unwrap();
        let c4 = cross.widest_kernel_for(4).unwrap();
        assert!(d4.north.scratch_entries() > c4.north.scratch_entries());
    }

    #[test]
    fn tight_scratch_drops_narrow_widths_first() {
        use cmcc_cm2::sequencer::ScratchMemory;
        let full = Compiler::default().compile_assignment(CROSS).unwrap();
        let full_entries: Vec<(usize, usize)> = full
            .kernels()
            .iter()
            .map(|k| {
                (
                    k.width,
                    k.north.scratch_entries() + k.south.scratch_entries(),
                )
            })
            .collect();
        let total: usize = full_entries.iter().map(|(_, e)| e).sum();
        // Budget for everything except the width-2 and width-4 kernels.
        let w2: usize = full_entries.iter().find(|(w, _)| *w == 2).unwrap().1;
        let w4: usize = full_entries.iter().find(|(w, _)| *w == 4).unwrap().1;
        let c = Compiler::default()
            .with_scratch(ScratchMemory::new(total - w2 - w4))
            .compile_assignment(CROSS)
            .unwrap();
        // The narrowest non-1 widths go first; the throughput-carrying
        // width 8 and the coverage-guaranteeing width 1 survive.
        assert_eq!(c.widths(), vec![8, 1]);
    }

    #[test]
    fn impossible_scratch_budget_is_reported() {
        use cmcc_cm2::sequencer::ScratchMemory;
        let err = Compiler::default()
            .with_scratch(ScratchMemory::new(10))
            .compile_assignment(CROSS)
            .unwrap_err();
        let CompileError::ScratchOverflow { needed, capacity } = err else {
            panic!("expected scratch overflow, got {err}");
        };
        assert_eq!(capacity, 10);
        assert!(needed > 10);
    }

    #[test]
    fn paper_patterns_fit_the_default_scratch() {
        use cmcc_cm2::sequencer::ScratchMemory;
        let scratch = ScratchMemory::default();
        for pattern in crate::patterns::PaperPattern::ALL {
            let c = Compiler::default()
                .compile_assignment(&pattern.fortran())
                .unwrap();
            let used = scratch
                .check(c.kernels().iter().flat_map(|k| [&k.north, &k.south]))
                .unwrap_or_else(|e| panic!("{pattern}: {e}"));
            assert!(used > 0);
        }
    }

    #[test]
    fn unroll_cap_can_disable_widths() {
        // The diamond's width-4 plan unrolls 15 lines (rings 5/3/1);
        // capping at 5 forces the compiler down to widths whose rings
        // equalize to a single size of 5.
        let c = Compiler::default()
            .with_max_unroll(5)
            .compile_assignment(&diamond_source())
            .unwrap();
        assert!(!c.widths().contains(&4), "widths: {:?}", c.widths());
        assert!(c.widths().contains(&2), "widths: {:?}", c.widths());
    }
}
