//! ASCII rendering of stencils and multistencils.
//!
//! The paper communicates stencil shapes with pictograms: shaded squares
//! for contributing positions and a bullet for the result position. This
//! module reproduces those figures in ASCII for the `repro_stencils`
//! binary and for diagnostics: `#` marks a tap, `@` a tap at the result
//! position, `o` the result position when it is not itself a tap, and
//! `.` empty grid.

use crate::offset::Offset;
use crate::stencil::Stencil;

/// Renders a stencil pattern as the paper draws it.
///
/// # Examples
///
/// ```
/// use cmcc_core::patterns::PaperPattern;
/// use cmcc_core::pictogram::render_stencil;
///
/// let art = render_stencil(&PaperPattern::Cross5.stencil());
/// assert_eq!(art, ". # .\n# @ #\n. # .\n");
/// ```
pub fn render_stencil(stencil: &Stencil) -> String {
    let cells = stencil.footprint();
    render_cells(&cells, &[Offset::CENTER])
}

/// Renders a multistencil (the union over all sources) with all `w`
/// result positions marked.
pub fn render_multistencil(stencil: &Stencil, width: usize) -> String {
    let mut cells = Vec::new();
    for i in 0..width as i32 {
        for cell in stencil.footprint() {
            let shifted = Offset::new(cell.drow, cell.dcol + i);
            if !cells.contains(&shifted) {
                cells.push(shifted);
            }
        }
    }
    let results: Vec<Offset> = (0..width as i32).map(|i| Offset::new(0, i)).collect();
    render_cells(&cells, &results)
}

fn render_cells(cells: &[Offset], results: &[Offset]) -> String {
    let min_r = cells
        .iter()
        .chain(results)
        .map(|o| o.drow)
        .min()
        .unwrap_or(0);
    let max_r = cells
        .iter()
        .chain(results)
        .map(|o| o.drow)
        .max()
        .unwrap_or(0);
    let min_c = cells
        .iter()
        .chain(results)
        .map(|o| o.dcol)
        .min()
        .unwrap_or(0);
    let max_c = cells
        .iter()
        .chain(results)
        .map(|o| o.dcol)
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for r in min_r..=max_r {
        for c in min_c..=max_c {
            if c > min_c {
                out.push(' ');
            }
            let here = Offset::new(r, c);
            let is_cell = cells.contains(&here);
            let is_result = results.contains(&here);
            out.push(match (is_cell, is_result) {
                (true, true) => '@',
                (true, false) => '#',
                (false, true) => 'o',
                (false, false) => '.',
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PaperPattern;

    #[test]
    fn cross_renders_as_a_plus() {
        let art = render_stencil(&PaperPattern::Cross5.stencil());
        assert_eq!(art, ". # .\n# @ #\n. # .\n");
    }

    #[test]
    fn diamond_renders_symmetric() {
        let art = render_stencil(&PaperPattern::Diamond13.stencil());
        let expected = "\
. . # . .
. # # # .
# # @ # #
. # # # .
. . # . .
";
        assert_eq!(art, expected);
    }

    #[test]
    fn asymmetric_marks_offcenter_result() {
        // §2's uncentered pattern: the bullet is a tap here.
        let art = render_stencil(&PaperPattern::Asymmetric5.stencil());
        assert!(art.contains('@'));
        // The pattern extends 2 rows south of the result.
        assert_eq!(art.lines().count(), 3);
    }

    #[test]
    fn multistencil_of_cross_width_4() {
        let art = render_multistencil(&PaperPattern::Cross5.stencil(), 4);
        let expected = "\
. # # # # .
# @ @ @ @ #
. # # # # .
";
        assert_eq!(art, expected);
    }

    #[test]
    fn result_outside_cells_rendered_as_o() {
        // A stencil that does not read its own center.
        let s = crate::stencil::Stencil::from_offsets(
            [(-1, 0), (1, 0)],
            crate::stencil::Boundary::Circular,
        )
        .unwrap();
        let art = render_stencil(&s);
        assert_eq!(art, "#\no\n#\n");
    }
}
