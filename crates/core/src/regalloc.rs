//! Physical register assignment over the WTL3164's 32-register file.
//!
//! Register conventions (§5.3):
//! * register 0 always holds `0.0` — chains start by adding it, and dummy
//!   multiply-adds park their results there;
//! * register 1 holds `1.0` *only* when the statement has a bare
//!   coefficient term (`… + C`), leaving "31 or 30 registers into which to
//!   load data elements";
//! * every remaining register belongs to some column's ring buffer;
//! * the accumulator for result *i* is not a separate register at all —
//!   it recycles the register currently holding the *tagged* (bottom-left)
//!   data element of stencil instance *i*.

use crate::columns::{RingPlan, RingSpec};
use crate::multistencil::ColumnSpan;
use cmcc_cm2::config::FPU_REGISTERS;
use cmcc_cm2::isa::Reg;
use std::fmt;

/// Direction a kernel walks its half-strip.
///
/// The paper's kernels walk toward decreasing rows ("the line just above
/// this one", §5.4), recycling the bottommost row; the mirrored southward
/// walk lets the second half-strip also start at a subgrid edge and move
/// toward the center (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Walk {
    /// Rows decrease line by line; the leading edge is each column's
    /// topmost row and the bottommost row recycles.
    North,
    /// Rows increase line by line; roles are mirrored.
    South,
}

impl Walk {
    /// The per-line row step.
    pub fn row_step(&self) -> i32 {
        match self {
            Walk::North => -1,
            Walk::South => 1,
        }
    }

    /// The leading-edge row of a column: the row whose element is newly
    /// loaded each line.
    pub fn edge_row(&self, span: &ColumnSpan) -> i32 {
        match self {
            Walk::North => span.lo,
            Walk::South => span.hi,
        }
    }

    /// How many lines ago the element at `drow` entered its ring.
    ///
    /// # Panics
    ///
    /// Panics if `drow` is outside the column span.
    pub fn age(&self, span: &ColumnSpan, drow: i32) -> usize {
        assert!(
            (span.lo..=span.hi).contains(&drow),
            "row {drow} outside column span {}..={}",
            span.lo,
            span.hi
        );
        match self {
            Walk::North => (drow - span.lo) as usize,
            Walk::South => (span.hi - drow) as usize,
        }
    }
}

/// One ring buffer's physical registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingRegs {
    /// The planned ring.
    pub spec: RingSpec,
    /// Physical registers, one per slot.
    pub regs: Vec<Reg>,
}

/// The complete register assignment for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    rings: Vec<RingRegs>,
    uses_one: bool,
    /// Accumulators for a pure-bias stencil (no taps, so no rings to
    /// recycle); empty otherwise.
    acc_pool: Vec<Reg>,
    registers_used: usize,
}

/// The assignment did not fit the register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterOverflow {
    /// Registers demanded (data + reserved).
    pub needed: usize,
}

impl fmt::Display for RegisterOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "register assignment needs {} registers but the file has {FPU_REGISTERS}",
            self.needed
        )
    }
}

impl std::error::Error for RegisterOverflow {}

impl RegisterFile {
    /// Assigns physical registers to a ring plan.
    ///
    /// # Errors
    ///
    /// Returns [`RegisterOverflow`] if the plan plus reserved registers
    /// exceeds the file (callers normally pre-budget via
    /// [`crate::columns::plan_rings`], so this is a defensive check).
    pub fn assign(plan: &RingPlan, needs_one: bool) -> Result<Self, RegisterOverflow> {
        let reserved = 1 + usize::from(needs_one);
        let needed = reserved + plan.registers_used();
        if needed > FPU_REGISTERS {
            return Err(RegisterOverflow { needed });
        }
        let mut next = reserved as u8;
        let rings = plan
            .rings()
            .iter()
            .map(|&spec| {
                let regs = (0..spec.size)
                    .map(|_| {
                        let r = Reg(next);
                        next += 1;
                        r
                    })
                    .collect();
                RingRegs { spec, regs }
            })
            .collect();
        Ok(RegisterFile {
            rings,
            uses_one: needs_one,
            acc_pool: Vec::new(),
            registers_used: needed,
        })
    }

    /// Assigns `width` bare accumulator registers for a pure-bias stencil
    /// (one per result; there are no data rings to recycle).
    ///
    /// # Errors
    ///
    /// Returns [`RegisterOverflow`] if `width` accumulators plus the two
    /// reserved registers do not fit.
    pub fn assign_bias_only(width: usize, needs_one: bool) -> Result<Self, RegisterOverflow> {
        let reserved = 1 + usize::from(needs_one);
        let needed = reserved + width;
        if needed > FPU_REGISTERS {
            return Err(RegisterOverflow { needed });
        }
        let acc_pool = (0..width).map(|i| Reg((reserved + i) as u8)).collect();
        Ok(RegisterFile {
            rings: Vec::new(),
            uses_one: needs_one,
            acc_pool,
            registers_used: needed,
        })
    }

    /// The rings with their registers, left to right.
    pub fn rings(&self) -> &[RingRegs] {
        &self.rings
    }

    /// Whether register 1 is reserved for `1.0`.
    pub fn uses_one(&self) -> bool {
        self.uses_one
    }

    /// Total registers in use, including reserved ones.
    pub fn registers_used(&self) -> usize {
        self.registers_used
    }

    /// Accumulators for the pure-bias case.
    pub fn acc_pool(&self) -> &[Reg] {
        &self.acc_pool
    }

    /// The ring serving multistencil column `dcol` of source plane
    /// `source`.
    ///
    /// # Panics
    ///
    /// Panics if the column is not part of the multistencil (a compiler
    /// bug).
    pub fn ring(&self, source: u16, dcol: i32) -> &RingRegs {
        self.rings
            .iter()
            .find(|r| r.spec.span.source == source && r.spec.span.dcol == dcol)
            .unwrap_or_else(|| panic!("no ring for source {source} column {dcol}"))
    }

    /// The register that receives the leading-edge load of source
    /// `source`, column `dcol`, at unrolled line `line`.
    pub fn edge_reg(&self, source: u16, dcol: i32, line: usize) -> Reg {
        let ring = self.ring(source, dcol);
        ring.regs[line % ring.regs.len()]
    }

    /// The register holding source `source`'s element at `(drow, dcol)`
    /// while processing unrolled line `line` under `walk`.
    ///
    /// The element entered the ring `age` lines ago, so it sits `age`
    /// slots behind the current load slot.
    ///
    /// # Panics
    ///
    /// Panics if `(source, drow, dcol)` is outside the multistencil (a
    /// compiler bug).
    pub fn element_reg(&self, walk: Walk, line: usize, source: u16, drow: i32, dcol: i32) -> Reg {
        let ring = self.ring(source, dcol);
        let age = walk.age(&ring.spec.span, drow);
        let size = ring.regs.len() as i64;
        let slot = (line as i64 - age as i64).rem_euclid(size) as usize;
        ring.regs[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columns::plan_rings;
    use crate::multistencil::Multistencil;
    use crate::stencil::{Boundary, Stencil};

    fn cross5() -> Stencil {
        Stencil::from_offsets(
            [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)],
            Boundary::Circular,
        )
        .unwrap()
    }

    fn file(width: usize) -> RegisterFile {
        let ms = Multistencil::new(&cross5(), width);
        let plan = plan_rings(&ms, 31, 512).unwrap();
        RegisterFile::assign(&plan, false).unwrap()
    }

    #[test]
    fn registers_start_after_reserved() {
        let f = file(8);
        assert_eq!(f.rings()[0].regs[0], Reg(1), "no 1.0 register reserved");
        let ms = Multistencil::new(&cross5(), 8);
        let plan = plan_rings(&ms, 30, 512).unwrap();
        let f1 = RegisterFile::assign(&plan, true).unwrap();
        assert_eq!(f1.rings()[0].regs[0], Reg(2), "1.0 register reserved");
        assert!(f1.uses_one());
    }

    #[test]
    fn all_registers_distinct_and_in_range() {
        let f = file(8);
        let mut seen = std::collections::BTreeSet::new();
        for ring in f.rings() {
            for &r in &ring.regs {
                assert!(seen.insert(r), "register {r} assigned twice");
                assert!((r.0 as usize) < FPU_REGISTERS);
                assert_ne!(r, Reg::ZERO);
            }
        }
        assert_eq!(seen.len() + 1, f.registers_used());
    }

    #[test]
    fn ring_rotation_cycles_with_line() {
        let f = file(4);
        // Column 0 has a 3-slot ring; the edge register repeats mod 3.
        assert_eq!(f.edge_reg(0, 0, 0), f.edge_reg(0, 0, 3));
        assert_ne!(f.edge_reg(0, 0, 0), f.edge_reg(0, 0, 1));
    }

    #[test]
    fn element_age_maps_to_earlier_slots() {
        let f = file(4);
        // Northward: the bottom row (drow=1) is the oldest (age 2 in a
        // height-3 column); at line 2 it sits in the slot loaded at
        // line 0.
        assert_eq!(f.element_reg(Walk::North, 2, 0, 1, 0), f.edge_reg(0, 0, 0),);
        // The top row (drow=-1) is the line's own edge load.
        assert_eq!(f.element_reg(Walk::North, 2, 0, -1, 0), f.edge_reg(0, 0, 2),);
    }

    #[test]
    fn southward_walk_mirrors_ages() {
        let f = file(4);
        let span = f.ring(0, 0).spec.span;
        assert_eq!(Walk::South.edge_row(&span), 1);
        assert_eq!(Walk::South.age(&span, 1), 0);
        assert_eq!(Walk::South.age(&span, -1), 2);
        assert_eq!(Walk::North.age(&span, -1), 0);
    }

    #[test]
    fn accumulator_slot_is_reloaded_next_line_for_natural_rings() {
        // §5.4: "loading this new row into the row of registers just
        // vacated by the storing of results."
        let f = file(4);
        // Natural 3-slot ring in column 0: the bottom element's register
        // at line l is the edge register of line l+1.
        for l in 0..6 {
            assert_eq!(
                f.element_reg(Walk::North, l, 0, 1, 0),
                f.edge_reg(0, 0, l + 1),
                "line {l}"
            );
        }
    }

    #[test]
    fn bias_only_assignment() {
        let f = RegisterFile::assign_bias_only(8, true).unwrap();
        assert_eq!(f.acc_pool().len(), 8);
        assert_eq!(f.acc_pool()[0], Reg(2));
        assert_eq!(f.registers_used(), 10);
        assert!(RegisterFile::assign_bias_only(31, true).is_err());
    }

    #[test]
    #[should_panic(expected = "no ring")]
    fn unknown_column_panics() {
        let f = file(2);
        let _ = f.ring(0, 99);
    }

    #[test]
    fn overflow_is_reported() {
        let err = RegisterFile::assign_bias_only(40, false).unwrap_err();
        assert_eq!(err.needed, 41);
        assert!(err.to_string().contains("41"));
    }
}
