//! The stencil patterns drawn in the paper, as reusable Fortran sources.
//!
//! §2 and §5 of the paper draw several concrete patterns: the 5-point
//! cross, a 9-point axis star with shifts of ±1 and ±2, the 9-point 3×3
//! square built from nested shifts, an asymmetric 5-point pattern, and
//! the 13-point diamond used to motivate per-column ring buffers. §7
//! additionally times a seismic kernel ("a nine-point cross stencil plus
//! an additional term"). Each variant here carries the Fortran statement
//! the paper would write for it; [`PaperPattern::spec`] runs it through
//! the real front end and recognizer so tests, examples, and benchmarks
//! all exercise the production path.

use crate::error::CompileError;
use crate::recognize::{recognize, StencilSpec};
use crate::stencil::Stencil;
use cmcc_front::parser::parse_assignment;
use std::fmt;

/// The named patterns of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperPattern {
    /// The 5-point von Neumann cross (§2's first example; 9 flops/point).
    Cross5,
    /// The 9-point axis star with shifts ±1 and ±2 (§2's second example;
    /// 17 flops/point).
    Star9,
    /// The dense 3×3 square written with nested shifts (§2; 17
    /// flops/point).
    Square9,
    /// §2's asymmetric, uncentered 5-point example (9 flops/point).
    Asymmetric5,
    /// The 13-point diamond of §5.3–5.4 (25 flops/point; no width-8
    /// kernel fits).
    Diamond13,
}

impl PaperPattern {
    /// All patterns, in presentation order.
    pub const ALL: [PaperPattern; 5] = [
        PaperPattern::Cross5,
        PaperPattern::Star9,
        PaperPattern::Square9,
        PaperPattern::Asymmetric5,
        PaperPattern::Diamond13,
    ];

    /// The four patterns the results table is reproduced over (the OCR of
    /// the paper's table makes the exact pattern↔block mapping ambiguous;
    /// see EXPERIMENTS.md).
    pub const TABLE: [PaperPattern; 4] = [
        PaperPattern::Cross5,
        PaperPattern::Star9,
        PaperPattern::Square9,
        PaperPattern::Diamond13,
    ];

    /// A short display name.
    pub fn name(&self) -> &'static str {
        match self {
            PaperPattern::Cross5 => "5-point cross",
            PaperPattern::Star9 => "9-point star",
            PaperPattern::Square9 => "9-point square",
            PaperPattern::Asymmetric5 => "asymmetric 5-point",
            PaperPattern::Diamond13 => "13-point diamond",
        }
    }

    /// The Fortran 90 assignment statement for this pattern, as the paper
    /// writes it.
    pub fn fortran(&self) -> String {
        match self {
            PaperPattern::Cross5 => "R = C1 * CSHIFT (X, DIM=1, SHIFT=-1) \
                                       + C2 * CSHIFT (X, DIM=2, SHIFT=-1) \
                                       + C3 * X \
                                       + C4 * CSHIFT (X, DIM=2, SHIFT=+1) \
                                       + C5 * CSHIFT (X, DIM=1, SHIFT=+1)"
                .to_owned(),
            PaperPattern::Star9 => "R = C1 * CSHIFT (X, DIM=1, SHIFT=-2) \
                                      + C2 * CSHIFT (X, DIM=1, SHIFT=-1) \
                                      + C3 * CSHIFT (X, DIM=2, SHIFT=-2) \
                                      + C4 * CSHIFT (X, DIM=2, SHIFT=-1) \
                                      + C5 * X \
                                      + C6 * CSHIFT (X, DIM=2, SHIFT=+2) \
                                      + C7 * CSHIFT (X, DIM=2, SHIFT=+1) \
                                      + C8 * CSHIFT (X, DIM=1, SHIFT=+1) \
                                      + C9 * CSHIFT (X, DIM=1, SHIFT=+2)"
                .to_owned(),
            PaperPattern::Square9 => "R = C1 * CSHIFT(CSHIFT (X, 1,-1) ,2, -1) \
                                        + C2 * CSHIFT(X, 1, -1) \
                                        + C3 * CSHIFT(CSHIFT (X,1,-1) ,2,+1) \
                                        + C4 * CSHIFT (X,2,-1) \
                                        + C5 * X \
                                        + C6 * CSHIFT (X,2,+1) \
                                        + C7 * CSHIFT (CSHIFT (X, 1,+1) ,2, -1) \
                                        + C8 * CSHIFT(X, 1,+1) \
                                        + C9 * CSHIFT(CSHIFT (X, 1,+1) ,2, +1)"
                .to_owned(),
            PaperPattern::Asymmetric5 => "R = C1 * X \
                                            + C2 * CSHIFT (X,2,+1) \
                                            + C3 * CSHIFT(CSHIFT (X, 1,+1) ,2,-1) \
                                            + C4 * CSHIFT (X, 1,+1) \
                                            + C5 * CSHIFT (X,1,+2)"
                .to_owned(),
            PaperPattern::Diamond13 => {
                let mut terms = Vec::new();
                let mut i = 0;
                for dr in -2i32..=2 {
                    for dc in -2i32..=2 {
                        if dr.abs() + dc.abs() <= 2 {
                            i += 1;
                            terms.push(match (dr, dc) {
                                (0, 0) => format!("C{i} * X"),
                                (dr, 0) => format!("C{i} * CSHIFT(X, 1, {dr:+})"),
                                (0, dc) => format!("C{i} * CSHIFT(X, 2, {dc:+})"),
                                (dr, dc) => {
                                    format!("C{i} * CSHIFT(CSHIFT(X, 1, {dr:+}), 2, {dc:+})")
                                }
                            });
                        }
                    }
                }
                format!("R = {}", terms.join(" + "))
            }
        }
    }

    /// Parses and recognizes the pattern through the production front end.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in patterns in practice; the `Result`
    /// propagates the front-end plumbing.
    pub fn spec(&self) -> Result<StencilSpec, CompileError> {
        let stmt = parse_assignment(&self.fortran())?;
        Ok(recognize(&stmt)?)
    }

    /// The stencil IR for this pattern.
    ///
    /// # Panics
    ///
    /// Panics if the built-in source fails to recognize (a bug).
    pub fn stencil(&self) -> Stencil {
        self.spec()
            .unwrap_or_else(|e| panic!("builtin pattern {self} failed to compile: {e}"))
            .stencil
    }

    /// Number of taps.
    pub fn points(&self) -> usize {
        match self {
            PaperPattern::Cross5 | PaperPattern::Asymmetric5 => 5,
            PaperPattern::Star9 | PaperPattern::Square9 => 9,
            PaperPattern::Diamond13 => 13,
        }
    }
}

impl fmt::Display for PaperPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_patterns_recognize() {
        for p in PaperPattern::ALL {
            let spec = p.spec().unwrap();
            assert_eq!(spec.stencil.taps().len(), p.points(), "{p}");
            assert_eq!(spec.source(), "X");
            assert_eq!(spec.target, "R");
        }
    }

    #[test]
    fn flop_counts_match_the_paper_rule() {
        assert_eq!(PaperPattern::Cross5.stencil().useful_flops_per_point(), 9);
        assert_eq!(PaperPattern::Star9.stencil().useful_flops_per_point(), 17);
        assert_eq!(PaperPattern::Square9.stencil().useful_flops_per_point(), 17);
        assert_eq!(
            PaperPattern::Asymmetric5.stencil().useful_flops_per_point(),
            9
        );
        assert_eq!(
            PaperPattern::Diamond13.stencil().useful_flops_per_point(),
            25
        );
    }

    #[test]
    fn corner_exchange_requirements() {
        assert!(!PaperPattern::Cross5.stencil().needs_corner_exchange());
        assert!(!PaperPattern::Star9.stencil().needs_corner_exchange());
        assert!(PaperPattern::Square9.stencil().needs_corner_exchange());
        assert!(PaperPattern::Diamond13.stencil().needs_corner_exchange());
    }

    #[test]
    fn asymmetric_borders_match_section_2() {
        let b = PaperPattern::Asymmetric5.stencil().borders();
        assert_eq!((b.north, b.south, b.east, b.west), (0, 2, 1, 1));
    }

    #[test]
    fn star_borders_are_two_everywhere() {
        let b = PaperPattern::Star9.stencil().borders();
        assert_eq!((b.north, b.south, b.east, b.west), (2, 2, 2, 2));
    }
}
