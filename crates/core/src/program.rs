//! Whole-program compilation with structured-comment directives — the
//! paper's third implementation (§6).
//!
//! "The third version ... will be fully integrated into the CM Fortran
//! compiler ... The need for isolated subroutines will be eliminated. We
//! plan to allow the user to flag stencil assignment statements with a
//! directive in the form of a structured comment; while the compiler can
//! easily recognize candidate assignment statements, the presence of a
//! directive justifies the compiler in providing feedback to the user,
//! such as a warning if the statement could not be processed by this
//! technique after all (for lack of registers, for example)."
//!
//! [`compile_program`] implements exactly that contract:
//!
//! * every assignment statement is a *candidate* and is compiled when it
//!   matches the convolution form;
//! * statements flagged `!CMF$ STENCIL` that cannot be compiled produce a
//!   [`Warning`] with a rendered caret diagnostic;
//! * unflagged non-stencil statements are silently left to generic code.
//!
//! `!CMF$ STENCIL MULTI` additionally opts the statement into the
//! multi-source extension.

use crate::compiler::{CompiledStencil, Compiler};
use crate::error::CompileError;
use crate::recognize::{recognize, recognize_extended};
use cmcc_front::ast::DirectedStmt;
use cmcc_front::error::ParseError;
use cmcc_front::parser::parse_program;
use std::fmt;

/// A compiler warning on a flagged statement, with the paper's promised
/// feedback.
#[derive(Debug, Clone, PartialEq)]
pub struct Warning {
    /// What went wrong, in one sentence.
    pub message: String,
    /// A rendered caret diagnostic pointing into the program source.
    pub rendered: String,
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warning: {}", self.message)
    }
}

/// What became of one statement of the program.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitOutcome {
    /// Compiled to convolution kernels.
    Stencil(Box<CompiledStencil>),
    /// Flagged with a directive but not compilable: a warning, per §6.
    Flagged(Warning),
    /// Not a stencil and not flagged: left to the generic compiler,
    /// silently (the reason is recorded for tooling).
    Generic {
        /// Why the statement was passed over.
        reason: String,
    },
}

impl UnitOutcome {
    /// The compiled stencil, if this unit produced one.
    pub fn compiled(&self) -> Option<&CompiledStencil> {
        match self {
            UnitOutcome::Stencil(c) => Some(c),
            _ => None,
        }
    }
}

/// One statement's compilation record.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramUnit {
    /// The statement, printed back from the AST.
    pub statement: String,
    /// The directive text, if the statement was flagged.
    pub directive: Option<String>,
    /// What happened.
    pub outcome: UnitOutcome,
    /// Telemetry recorded while compiling this unit (recognize,
    /// multistencil, regalloc, and unroll spans); empty when profiling
    /// is disabled. Callers merge this into a run's report so per-run
    /// profiles can attribute compile time to the right statement.
    pub telemetry: cmcc_obs::RunReport,
}

/// Compiles a whole program unit: every statement is a candidate; flagged
/// failures warn.
///
/// # Errors
///
/// Returns [`ParseError`] only for malformed source text — recognition
/// and register failures are per-unit outcomes, not errors.
///
/// # Examples
///
/// ```
/// use cmcc_core::compiler::Compiler;
/// use cmcc_core::program::{compile_program, UnitOutcome};
///
/// let units = compile_program(
///     &Compiler::default(),
///     "Q = A / B\n\
///      !CMF$ STENCIL\n\
///      R = C1 * CSHIFT(X, 1, -1) + C2 * X\n",
/// )?;
/// assert!(matches!(units[0].outcome, UnitOutcome::Generic { .. }));
/// assert!(units[1].outcome.compiled().is_some());
/// # Ok::<(), cmcc_front::error::ParseError>(())
/// ```
pub fn compile_program(compiler: &Compiler, source: &str) -> Result<Vec<ProgramUnit>, ParseError> {
    let program = parse_program(source)?;
    Ok(program
        .stmts
        .iter()
        .map(|unit| compile_unit(compiler, source, unit))
        .collect())
}

fn compile_unit(compiler: &Compiler, source: &str, unit: &DirectedStmt) -> ProgramUnit {
    let before = cmcc_obs::snapshot();
    let mut out = compile_unit_outcome(compiler, source, unit);
    out.telemetry = cmcc_obs::snapshot().delta(&before);
    out
}

fn compile_unit_outcome(compiler: &Compiler, source: &str, unit: &DirectedStmt) -> ProgramUnit {
    let statement = unit.stmt.to_string();
    let directive = unit.directive.as_ref().map(|d| d.value.clone());

    // Directive validation: only STENCIL (optionally MULTI) is known.
    let mut multi = false;
    if let Some(d) = &unit.directive {
        let words: Vec<&str> = d.value.split_whitespace().collect();
        match words.as_slice() {
            ["STENCIL"] | ["stencil"] => {}
            ["STENCIL", "MULTI"] | ["stencil", "multi"] => multi = true,
            _ => {
                return ProgramUnit {
                    statement,
                    directive,
                    telemetry: cmcc_obs::RunReport::default(),
                    outcome: UnitOutcome::Flagged(Warning {
                        message: format!("unknown directive `!CMF$ {}`", d.value),
                        rendered: ParseError::new(
                            format!("unknown directive `!CMF$ {}`", d.value),
                            d.span,
                        )
                        .render(source),
                    }),
                };
            }
        }
    }

    let recognized = if multi {
        recognize_extended(&unit.stmt)
    } else {
        recognize(&unit.stmt)
    };
    let failure: CompileError = match recognized {
        Ok(spec) => match compiler.compile(spec) {
            Ok(compiled) => {
                return ProgramUnit {
                    statement,
                    directive,
                    telemetry: cmcc_obs::RunReport::default(),
                    outcome: UnitOutcome::Stencil(Box::new(compiled)),
                }
            }
            Err(e) => e,
        },
        Err(e) => e.into(),
    };

    // The statement is not compilable by this technique. Flagged →
    // warning with a diagnostic; unflagged → silently generic.
    if unit.directive.is_some() {
        let rendered = match &failure {
            CompileError::Recognize(e) => {
                ParseError::new(e.message().to_owned(), e.span()).render(source)
            }
            other => format!("error: {other}\n"),
        };
        let message = match &failure {
            CompileError::NoFeasibleWidth { .. } => {
                // The paper's example: "for lack of registers".
                format!("statement could not be processed by this technique: {failure}")
            }
            _ => format!("statement is not a stencil computation: {failure}"),
        };
        ProgramUnit {
            statement,
            directive,
            telemetry: cmcc_obs::RunReport::default(),
            outcome: UnitOutcome::Flagged(Warning { message, rendered }),
        }
    } else {
        ProgramUnit {
            statement,
            directive,
            telemetry: cmcc_obs::RunReport::default(),
            outcome: UnitOutcome::Generic {
                reason: failure.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PaperPattern;

    fn compiler() -> Compiler {
        Compiler::default()
    }

    #[test]
    fn candidates_compile_without_directives() {
        // §6: "the compiler can easily recognize candidate assignment
        // statements" — no directive needed for a match.
        let units = compile_program(&compiler(), &PaperPattern::Cross5.fortran()).unwrap();
        assert_eq!(units.len(), 1);
        assert!(units[0].outcome.compiled().is_some());
        assert!(units[0].directive.is_none());
    }

    #[test]
    fn flagged_failures_warn_with_diagnostics() {
        let src = "!CMF$ STENCIL\nR = C1 * X - C2 * CSHIFT(X, 1, 1)\n";
        let units = compile_program(&compiler(), src).unwrap();
        let UnitOutcome::Flagged(warning) = &units[0].outcome else {
            panic!("expected a warning, got {:?}", units[0].outcome);
        };
        assert!(warning.message.contains("subtraction"), "{warning}");
        assert!(warning.rendered.contains('^'), "{}", warning.rendered);
    }

    #[test]
    fn flagged_register_exhaustion_warns_like_the_paper() {
        // §6's example feedback: "for lack of registers".
        let terms: Vec<String> = (0..41)
            .map(|i| format!("C{i} * CSHIFT(X, 2, {})", i - 20))
            .collect();
        let src = format!("!CMF$ STENCIL\nR = {}\n", terms.join(" + "));
        let units = compile_program(&compiler(), &src).unwrap();
        let UnitOutcome::Flagged(warning) = &units[0].outcome else {
            panic!("expected a warning");
        };
        assert!(
            warning.message.contains("could not be processed"),
            "{warning}"
        );
        assert!(warning.message.contains("registers"), "{warning}");
    }

    #[test]
    fn unflagged_failures_stay_silent() {
        let units = compile_program(&compiler(), "Q = A / B\n").unwrap();
        assert!(matches!(
            &units[0].outcome,
            UnitOutcome::Generic { reason } if reason.contains('/')
        ));
    }

    #[test]
    fn multi_directive_enables_fusion() {
        let src = "!CMF$ STENCIL MULTI\nR = CSHIFT(A, 1, 1) + CSHIFT(B, 2, 1)\n";
        let units = compile_program(&compiler(), src).unwrap();
        let compiled = units[0].outcome.compiled().expect("compiles under MULTI");
        assert!(compiled.stencil().is_multi_source());

        // Without MULTI, the same statement warns.
        let src = "!CMF$ STENCIL\nR = CSHIFT(A, 1, 1) + CSHIFT(B, 2, 1)\n";
        let units = compile_program(&compiler(), src).unwrap();
        assert!(matches!(units[0].outcome, UnitOutcome::Flagged(_)));
    }

    #[test]
    fn unknown_directives_warn() {
        let src = "!CMF$ VECTORIZE\nR = C * X\n";
        let units = compile_program(&compiler(), src).unwrap();
        let UnitOutcome::Flagged(warning) = &units[0].outcome else {
            panic!("expected a warning");
        };
        assert!(warning.message.contains("VECTORIZE"), "{warning}");
    }

    #[test]
    fn mixed_programs_compile_statement_by_statement() {
        let src = format!(
            "Q = A / B\n!CMF$ STENCIL\n{}\nP = C * D\n",
            PaperPattern::Square9.fortran()
        );
        let units = compile_program(&compiler(), &src).unwrap();
        assert_eq!(units.len(), 3);
        assert!(matches!(units[0].outcome, UnitOutcome::Generic { .. }));
        assert!(units[1].outcome.compiled().is_some());
        // `P = C * D` is a legal stencil candidate (identity on D).
        assert!(units[2].outcome.compiled().is_some());
    }

    #[test]
    fn trailing_directive_is_a_parse_error() {
        let err = compile_program(&compiler(), "R = C * X\n!CMF$ STENCIL\n").unwrap_err();
        assert!(err.message().contains("not followed"));
    }
}
