//! Kernel schedule generation: turning a stencil + ring plan into the
//! per-cycle dynamic instruction parts.
//!
//! Each unrolled line of the kernel does, in order (§5.3–5.4):
//!
//! 1. **Leading-edge loads** — one load per multistencil column, into the
//!    column ring's current slot.
//! 2. **Multiply-add bursts** — results computed in pairs, left to right,
//!    the two chains interleaved cycle by cycle to exploit the WTL3164's
//!    adder latency. Each chain starts by adding the zero register and
//!    ends by writing its sum into the register holding the *tagged*
//!    data element of its own stencil instance.
//! 3. **Drain bubbles** — just enough idle cycles that the first store
//!    does not read a sum still in the writeback pipeline.
//! 4. **Stores** — all `w` results stored consecutively ("it is more
//!    efficient to compute all eight results and then store all eight
//!    consecutively", §5.3).
//!
//! The register-access pattern repeats with period LCM(ring sizes), so the
//! body is unrolled that many lines; "the unrolling factor is passed as a
//! parameter to the microcode at run time" (§5.4) — here it is simply the
//! body length of the emitted [`Kernel`].

use crate::columns::{plan_rings, PlanError, RingPlan};
use crate::multistencil::Multistencil;
use crate::regalloc::{RegisterFile, Walk};
use crate::stencil::{CoeffRef, Stencil};
use cmcc_cm2::config::{MachineConfig, FPU_REGISTERS};
use cmcc_cm2::isa::{DynamicPart, Kernel, MacAcc, MemRef, Reg, StaticPart};

/// Summary of one compiled kernel, for reporting and ablation studies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelInfo {
    /// Strip width.
    pub width: usize,
    /// Walk direction.
    pub walk: Walk,
    /// Distinct multistencil cells (elements resident per line).
    pub cells: usize,
    /// Ring sizes, left to right.
    pub ring_sizes: Vec<usize>,
    /// Registers in use including reserved ones.
    pub registers_used: usize,
    /// Unroll factor (LCM of ring sizes).
    pub unroll: usize,
    /// Loads per line.
    pub loads_per_line: usize,
    /// Multiply-adds per line (including dummy-thread padding).
    pub macs_per_line: usize,
    /// Stores per line.
    pub stores_per_line: usize,
    /// Drain/safety bubbles per line (averaged over the unrolled block,
    /// rounded up).
    pub nops_per_line: usize,
}

/// Emits the kernel for `stencil` at strip width `width`, walking `walk`.
///
/// # Errors
///
/// Returns a [`PlanError`] when the width's multistencil does not fit the
/// register file or its unroll factor exceeds `max_unroll` — the caller
/// then falls back to a narrower width (§5.3: "it is all right if some of
/// these don't work").
pub fn emit_kernel(
    stencil: &Stencil,
    width: usize,
    walk: Walk,
    cfg: &MachineConfig,
    max_unroll: usize,
) -> Result<(Kernel, KernelInfo), PlanError> {
    emit_kernel_with(stencil, width, walk, cfg, max_unroll, true)
}

/// [`emit_kernel`] with the result-pairing choice exposed.
///
/// The paper computes "the results in pairs in order to exploit the
/// timing of the WTL3164 chip; two chained multiply-add threads are
/// interleaved" (§5.3). `paired = false` emits the counterfactual for
/// the pairing ablation: one real chain at a time, its partner slot
/// filled by the dummy thread — half the multiply-add throughput.
///
/// # Errors
///
/// As [`emit_kernel`].
pub fn emit_kernel_with(
    stencil: &Stencil,
    width: usize,
    walk: Walk,
    cfg: &MachineConfig,
    max_unroll: usize,
    paired: bool,
) -> Result<(Kernel, KernelInfo), PlanError> {
    assert!(width > 0, "strip width must be nonzero");
    if stencil.taps().is_empty() {
        return emit_bias_only(stencil, width, walk, cfg);
    }
    let ms = {
        let _span = cmcc_obs::span(cmcc_obs::Phase::Multistencil);
        Multistencil::new(stencil, width)
    };
    let reserved = 1 + usize::from(stencil.needs_one_register());
    let budget = FPU_REGISTERS - reserved;
    let (plan, regs) = {
        let _span = cmcc_obs::span(cmcc_obs::Phase::Regalloc);
        let plan = plan_rings(&ms, budget, max_unroll)?;
        let regs = RegisterFile::assign(&plan, stencil.needs_one_register())
            .expect("ring plan was budgeted to fit the register file");
        (plan, regs)
    };

    let unroll_span = cmcc_obs::span(cmcc_obs::Phase::Unroll);
    let emitter = Emitter {
        stencil,
        width,
        walk,
        regs: &regs,
        cfg,
        paired,
    };
    let body: Vec<Vec<DynamicPart>> = (0..plan.unroll()).map(|l| emitter.line(l)).collect();
    let prologue = emitter.prologue();
    drop(unroll_span);

    let kernel = Kernel {
        static_part: StaticPart::ChainedMac,
        width,
        row_step: walk.row_step(),
        prologue,
        body,
        useful_flops_per_line: width as u64 * stencil.useful_flops_per_point(),
    };
    debug_assert_eq!(kernel.validate(), Ok(()));
    let info = info_for(&kernel, &plan, &regs, width, walk, ms.cell_count());
    Ok((kernel, info))
}

fn info_for(
    kernel: &Kernel,
    plan: &RingPlan,
    regs: &RegisterFile,
    width: usize,
    walk: Walk,
    cells: usize,
) -> KernelInfo {
    let count = |pred: fn(&DynamicPart) -> bool| -> usize {
        let total: usize = kernel
            .body
            .iter()
            .map(|line| line.iter().filter(|p| pred(p)).count())
            .sum();
        total.div_ceil(kernel.body.len())
    };
    KernelInfo {
        width,
        walk,
        cells,
        ring_sizes: plan.rings().iter().map(|r| r.size).collect(),
        registers_used: regs.registers_used(),
        unroll: kernel.body.len(),
        loads_per_line: count(|p| matches!(p, DynamicPart::Load { .. })),
        macs_per_line: count(|p| matches!(p, DynamicPart::Mac { .. })),
        stores_per_line: count(|p| matches!(p, DynamicPart::Store { .. })),
        nops_per_line: count(|p| matches!(p, DynamicPart::Nop)),
    }
}

struct Emitter<'a> {
    stencil: &'a Stencil,
    width: usize,
    walk: Walk,
    regs: &'a RegisterFile,
    cfg: &'a MachineConfig,
    paired: bool,
}

impl Emitter<'_> {
    /// Prologue: load every ring element *except* each column's leading
    /// edge (line 0's own load burst brings that in), placing elements as
    /// if loaded by the virtual lines before line 0. Trailing bubbles let
    /// the last load commit before line 0 begins.
    fn prologue(&self) -> Vec<DynamicPart> {
        let mut parts = Vec::new();
        for ring in self.regs.rings() {
            let span = ring.spec.span;
            let size = ring.regs.len() as i64;
            for age in 1..span.height() {
                let drow = match self.walk {
                    Walk::North => span.lo + age as i32,
                    Walk::South => span.hi - age as i32,
                };
                let slot = (-(age as i64)).rem_euclid(size) as usize;
                parts.push(DynamicPart::Load {
                    src: MemRef::Source {
                        array: span.source,
                        drow,
                        dcol: span.dcol,
                    },
                    dest: ring.regs[slot],
                });
            }
        }
        for _ in 0..self.cfg.load_commit_latency {
            parts.push(DynamicPart::Nop);
        }
        parts
    }

    /// One unrolled line: loads, safety bubbles, interleaved MAC pairs,
    /// drain bubbles, stores.
    fn line(&self, l: usize) -> Vec<DynamicPart> {
        let mut parts = Vec::new();
        // 1. Leading-edge loads; remember where each register was loaded.
        let mut load_pos: Vec<(Reg, usize)> = Vec::new();
        for ring in self.regs.rings() {
            let span = ring.spec.span;
            let dest = self.regs.edge_reg(span.source, span.dcol, l);
            load_pos.push((dest, parts.len()));
            parts.push(DynamicPart::Load {
                src: MemRef::Source {
                    array: span.source,
                    drow: self.walk.edge_row(&span),
                    dcol: span.dcol,
                },
                dest,
            });
        }
        let loads_len = parts.len();

        // 2. Build the MAC burst and the per-result final-MAC positions.
        let (macs, final_mac) = self.mac_burst(l);

        // Safety bubbles: no MAC may read a register loaded fewer than
        // `load_commit_latency` cycles earlier.
        let lat = self.cfg.load_commit_latency as usize;
        let mut safety = 0usize;
        for (t, mac) in macs.iter().enumerate() {
            if let DynamicPart::Mac { data, .. } = mac {
                if let Some(&(_, p)) = load_pos.iter().find(|(r, _)| r == data) {
                    let earliest = p + lat;
                    let at = loads_len + t;
                    safety = safety.max(earliest.saturating_sub(at));
                }
            }
        }
        parts.extend(std::iter::repeat_n(DynamicPart::Nop, safety));
        let mac_base = parts.len();
        let macs_len = macs.len();
        parts.extend(macs);

        // 3. Drain bubbles: store `i` (at index `end + drain + i`) must
        //    not read its sum before the writeback commits at
        //    `final_mac[i] + mac_commit_latency`.
        let mac_lat = self.cfg.mac_commit_latency as usize;
        let mut drain = 0usize;
        for (i, &f_rel) in final_mac.iter().enumerate() {
            let commit = mac_base + f_rel + mac_lat;
            let store_at = mac_base + macs_len + i;
            drain = drain.max(commit.saturating_sub(store_at));
        }
        parts.extend(std::iter::repeat_n(DynamicPart::Nop, drain));

        // 4. Stores, left to right.
        for i in 0..self.width {
            parts.push(DynamicPart::Store {
                src: self.acc_reg(i, l),
                dest: MemRef::Result { col: i as u16 },
            });
        }
        parts
    }

    /// The accumulator for result `i` recycles the register of the tagged
    /// data element of stencil instance `i` (§5.3).
    fn acc_reg(&self, i: usize, l: usize) -> Reg {
        let (source, tag) = self
            .stencil
            .tagged_sourced_cell(self.walk == Walk::North)
            .expect("taps are nonempty on this path");
        self.regs
            .element_reg(self.walk, l, source, tag.drow, tag.dcol + i as i32)
    }

    /// Emits the interleaved MAC pairs for all `width` results of line
    /// `l`. Returns the instructions and, per result, the index of its
    /// final (writeback) MAC within the burst.
    fn mac_burst(&self, l: usize) -> (Vec<DynamicPart>, Vec<usize>) {
        let k = self.stencil.chain_len();
        let mut parts = Vec::new();
        let mut final_mac = vec![0usize; self.width];
        let lanes = if self.paired { 2 } else { 1 };
        for pair in 0..self.width.div_ceil(lanes) {
            let left = lanes * pair;
            let right = if self.paired { left + 1 } else { self.width };
            for t in 0..k {
                parts.push(self.mac_step(left, t, k, l));
                if t == k - 1 {
                    final_mac[left] = parts.len() - 1;
                }
                if right < self.width {
                    parts.push(self.mac_step(right, t, k, l));
                    if t == k - 1 {
                        final_mac[right] = parts.len() - 1;
                    }
                } else {
                    // Odd tail: a dummy partner thread keeps the two-thread
                    // interleave intact, multiplying zero by zero into the
                    // zero register ("there is no way not to store the
                    // result!", §5.3).
                    parts.push(DynamicPart::Mac {
                        coeff: MemRef::Zeros,
                        data: Reg::ZERO,
                        acc: if t == 0 {
                            MacAcc::Start(Reg::ZERO)
                        } else {
                            MacAcc::Chain
                        },
                        dest: (t == k - 1).then_some(Reg::ZERO),
                    });
                }
            }
        }
        (parts, final_mac)
    }

    /// The `t`-th chained MAC of result `i`: taps first (in statement
    /// order), then bias terms.
    fn mac_step(&self, i: usize, t: usize, k: usize, l: usize) -> DynamicPart {
        let taps = self.stencil.taps();
        let (coeff, data) = if t < taps.len() {
            let tap = &taps[t];
            let coeff = match tap.coeff {
                CoeffRef::Array(a) => MemRef::Coeff {
                    array: a as u16,
                    col: i as u16,
                },
                CoeffRef::Unit => MemRef::Ones,
            };
            let data = self.regs.element_reg(
                self.walk,
                l,
                tap.source,
                tap.offset.drow,
                tap.offset.dcol + i as i32,
            );
            (coeff, data)
        } else {
            let array = self.stencil.bias()[t - taps.len()];
            (
                MemRef::Coeff {
                    array: array as u16,
                    col: i as u16,
                },
                Reg::ONE,
            )
        };
        DynamicPart::Mac {
            coeff,
            data,
            acc: if t == 0 {
                MacAcc::Start(Reg::ZERO)
            } else {
                MacAcc::Chain
            },
            dest: (t == k - 1).then_some(self.acc_reg(i, l)),
        }
    }
}

/// Kernel for a stencil with no taps at all (`R = C1 + C2 + …`): no data
/// rings, one dedicated accumulator per result.
fn emit_bias_only(
    stencil: &Stencil,
    width: usize,
    walk: Walk,
    cfg: &MachineConfig,
) -> Result<(Kernel, KernelInfo), PlanError> {
    let regs = RegisterFile::assign_bias_only(width, stencil.needs_one_register()).map_err(
        |overflow| PlanError::NotEnoughRegisters {
            needed: overflow.needed,
            available: FPU_REGISTERS,
        },
    )?;
    let k = stencil.chain_len();
    let mut parts = Vec::new();
    let mut final_mac = vec![0usize; width];
    for pair in 0..width.div_ceil(2) {
        let left = 2 * pair;
        for t in 0..k {
            for lane in 0..2 {
                let i = left + lane;
                if i < width {
                    let array = stencil.bias()[t];
                    parts.push(DynamicPart::Mac {
                        coeff: MemRef::Coeff {
                            array: array as u16,
                            col: i as u16,
                        },
                        data: Reg::ONE,
                        acc: if t == 0 {
                            MacAcc::Start(Reg::ZERO)
                        } else {
                            MacAcc::Chain
                        },
                        dest: (t == k - 1).then_some(regs.acc_pool()[i]),
                    });
                    if t == k - 1 {
                        final_mac[i] = parts.len() - 1;
                    }
                } else {
                    parts.push(DynamicPart::Mac {
                        coeff: MemRef::Zeros,
                        data: Reg::ZERO,
                        acc: if t == 0 {
                            MacAcc::Start(Reg::ZERO)
                        } else {
                            MacAcc::Chain
                        },
                        dest: (t == k - 1).then_some(Reg::ZERO),
                    });
                }
            }
        }
    }
    let macs_len = parts.len();
    let mac_lat = cfg.mac_commit_latency as usize;
    let mut drain = 0usize;
    for (i, &f) in final_mac.iter().enumerate() {
        drain = drain.max((f + mac_lat).saturating_sub(macs_len + i));
    }
    parts.extend(std::iter::repeat_n(DynamicPart::Nop, drain));
    for (i, &acc) in regs.acc_pool().iter().enumerate() {
        parts.push(DynamicPart::Store {
            src: acc,
            dest: MemRef::Result { col: i as u16 },
        });
    }
    let kernel = Kernel {
        static_part: StaticPart::ChainedMac,
        width,
        row_step: walk.row_step(),
        prologue: Vec::new(),
        body: vec![parts],
        useful_flops_per_line: width as u64 * stencil.useful_flops_per_point(),
    };
    debug_assert_eq!(kernel.validate(), Ok(()));
    let info = KernelInfo {
        width,
        walk,
        cells: 0,
        ring_sizes: Vec::new(),
        registers_used: regs.registers_used(),
        unroll: 1,
        loads_per_line: 0,
        macs_per_line: kernel.body[0]
            .iter()
            .filter(|p| matches!(p, DynamicPart::Mac { .. }))
            .count(),
        stores_per_line: width,
        nops_per_line: drain,
    };
    Ok((kernel, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{Boundary, Tap};
    use cmcc_cm2::exec::{run_strip, ExecMode, FieldLayout, StripContext};
    use cmcc_cm2::memory::NodeMemory;

    fn cfg() -> MachineConfig {
        MachineConfig::test_board_16()
    }

    fn cross5() -> Stencil {
        Stencil::from_offsets(
            [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)],
            Boundary::Circular,
        )
        .unwrap()
    }

    #[test]
    fn cross_width8_structure_matches_paper() {
        let (kernel, info) = emit_kernel(&cross5(), 8, Walk::North, &cfg(), 512).unwrap();
        assert_eq!(info.cells, 26);
        assert_eq!(info.loads_per_line, 10); // one per column
        assert_eq!(info.macs_per_line, 40); // 8 results × 5-step chains
        assert_eq!(info.stores_per_line, 8);
        assert_eq!(info.unroll, 3); // rings 1,3,…,3,1 → LCM 3
        assert_eq!(kernel.useful_flops_per_line, 72);
        kernel.validate().unwrap();
    }

    #[test]
    fn register_pattern_rotates_across_unrolled_lines() {
        let (kernel, _) = emit_kernel(&cross5(), 4, Walk::North, &cfg(), 512).unwrap();
        assert_eq!(kernel.body.len(), 3);
        // The same structural pattern with different registers: line 0 and
        // line 1 must differ somewhere in register usage.
        assert_ne!(kernel.body[0], kernel.body[1]);
        assert_eq!(kernel.body[0].len(), kernel.body[1].len());
    }

    #[test]
    fn odd_width_pads_with_dummy_thread() {
        let (kernel, info) = emit_kernel(&cross5(), 1, Walk::North, &cfg(), 512).unwrap();
        // 1 real chain + 1 dummy chain = 10 MACs.
        assert_eq!(info.macs_per_line, 10);
        let dummies = kernel.body[0]
            .iter()
            .filter(|p| {
                matches!(
                    p,
                    DynamicPart::Mac {
                        coeff: MemRef::Zeros,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(dummies, 5);
    }

    #[test]
    fn south_walk_mirrors_sources() {
        let (north, _) = emit_kernel(&cross5(), 2, Walk::North, &cfg(), 512).unwrap();
        let (south, _) = emit_kernel(&cross5(), 2, Walk::South, &cfg(), 512).unwrap();
        assert_eq!(north.row_step, -1);
        assert_eq!(south.row_step, 1);
        // Northward kernels load the top row as the leading edge; the
        // southward kernel loads the bottom row.
        let edge_rows = |k: &Kernel| -> Vec<i32> {
            k.body[0]
                .iter()
                .filter_map(|p| match p {
                    DynamicPart::Load {
                        src: MemRef::Source { drow, .. },
                        ..
                    } => Some(*drow),
                    _ => None,
                })
                .collect()
        };
        // Cross columns: arms have height 1 (edge row 0); the three
        // middle columns span -1..1.
        let north_edges = edge_rows(&north);
        let south_edges = edge_rows(&south);
        assert!(north_edges.contains(&-1));
        assert!(!north_edges.contains(&1));
        assert!(south_edges.contains(&1));
        assert!(!south_edges.contains(&-1));
    }

    #[test]
    fn prologue_fills_everything_but_the_edge() {
        let (kernel, info) = emit_kernel(&cross5(), 8, Walk::North, &cfg(), 512).unwrap();
        let prologue_loads = kernel
            .prologue
            .iter()
            .filter(|p| matches!(p, DynamicPart::Load { .. }))
            .count();
        // cells - columns = 26 - 10 = 16.
        assert_eq!(prologue_loads, info.cells - info.loads_per_line);
    }

    /// Executes the compiled kernel on a hand-built padded buffer and
    /// compares against direct evaluation — both walks, several widths.
    #[test]
    fn kernel_computes_the_convolution() {
        let stencil = cross5();
        for walk in [Walk::North, Walk::South] {
            for width in [1usize, 2, 4, 8] {
                check_kernel(&stencil, width, walk);
            }
        }
    }

    /// A tougher pattern: 13-point diamond with its 5/3/1 rings (LCM 15).
    #[test]
    fn diamond_kernel_computes_the_convolution() {
        let mut offsets = Vec::new();
        for dr in -2i32..=2 {
            for dc in -2i32..=2 {
                if dr.abs() + dc.abs() <= 2 {
                    offsets.push((dr, dc));
                }
            }
        }
        let stencil = Stencil::from_offsets(offsets, Boundary::Circular).unwrap();
        assert!(matches!(
            emit_kernel(&stencil, 8, Walk::North, &cfg(), 512),
            Err(PlanError::NotEnoughRegisters { needed: 48, .. })
        ));
        check_kernel(&stencil, 4, Walk::North);
        check_kernel(&stencil, 4, Walk::South);
        check_kernel(&stencil, 2, Walk::North);
    }

    /// Unit taps and bias terms together.
    #[test]
    fn unit_and_bias_kernel_computes() {
        let stencil = Stencil::new(
            vec![Tap::unit(0, 0), Tap::new(-1, 0, 0), Tap::new(0, 1, 1)],
            vec![2],
            Boundary::Circular,
            3,
        )
        .unwrap();
        check_kernel(&stencil, 4, Walk::North);
        check_kernel(&stencil, 3, Walk::South);
    }

    /// The pairing ablation's counterfactual: single-thread chains give
    /// identical results with twice the multiply-add slots.
    #[test]
    fn unpaired_kernel_matches_but_doubles_macs() {
        let stencil = cross5();
        let (paired, pi) = emit_kernel_with(&stencil, 4, Walk::North, &cfg(), 512, true).unwrap();
        let (unpaired, ui) =
            emit_kernel_with(&stencil, 4, Walk::North, &cfg(), 512, false).unwrap();
        assert_eq!(ui.macs_per_line, 2 * pi.macs_per_line);
        let a = exec_on_test_grid(&stencil, &paired).unwrap();
        let b = exec_on_test_grid(&stencil, &unpaired).unwrap();
        assert_eq!(a, b, "pairing must not change results");
    }

    /// Failure injection: stripping the compiler's drain bubbles makes a
    /// store read its accumulator inside the writeback window — the
    /// cycle-level executor must refuse the kernel as hazardous rather
    /// than silently compute garbage.
    #[test]
    fn stripped_drain_bubbles_trip_the_hazard_detector() {
        let stencil = cross5();
        let (mut kernel, _) = emit_kernel(&stencil, 2, Walk::North, &cfg(), 512).unwrap();
        let before: usize = kernel.body.iter().map(Vec::len).sum();
        for line in &mut kernel.body {
            line.retain(|p| !matches!(p, DynamicPart::Nop));
        }
        let after: usize = kernel.body.iter().map(Vec::len).sum();
        assert!(after < before, "the compiler emitted no bubbles to strip");
        // Execute under a 1-cycle-per-instruction machine, where the
        // bubbles are load-bearing (the default 2-cycle multiply-add pace
        // happens to stretch the timeline past the writeback window).
        let mut tight = cfg();
        tight.mac_issue_cycles = 1;
        tight.pipe_reversal_penalty = 0;
        // The clean kernel stays correct even on the tight machine…
        let (clean, _) = emit_kernel(&stencil, 2, Walk::North, &tight, 512).unwrap();
        exec_on_test_grid_with(&stencil, &clean, &tight).unwrap();
        // …but the stripped one trips the hazard detector.
        let err = exec_on_test_grid_with(&stencil, &kernel, &tight).unwrap_err();
        assert!(err.to_string().contains("hazard"), "{err}");
    }

    /// Failure injection: corrupting one register operand produces results
    /// that differ from the clean kernel's — the differential harness
    /// would catch a register-allocation bug.
    #[test]
    fn corrupted_register_operand_changes_results() {
        let stencil = cross5();
        let (clean, _) = emit_kernel(&stencil, 2, Walk::North, &cfg(), 512).unwrap();
        let mut broken = clean.clone();
        // Redirect the data operand of the first multiply-add to a
        // different (also live) data register.
        let mut patched = false;
        'outer: for line in &mut broken.body {
            for part in line.iter_mut() {
                if let DynamicPart::Mac { data, .. } = part {
                    let other = if data.0 == 1 { Reg(2) } else { Reg(1) };
                    *data = other;
                    patched = true;
                    break 'outer;
                }
            }
        }
        assert!(patched);
        let want = exec_on_test_grid(&stencil, &clean).unwrap();
        // A hazard report would be an equally valid catch; a clean run
        // must at least produce different output.
        if let Ok(got) = exec_on_test_grid(&stencil, &broken) {
            assert_ne!(got, want, "corruption must change the output");
        }
    }

    /// Runs a kernel over a small padded grid, returning the result bits
    /// or the hazard error.
    fn exec_on_test_grid(
        stencil: &Stencil,
        kernel: &Kernel,
    ) -> Result<Vec<u32>, cmcc_cm2::exec::HazardError> {
        exec_on_test_grid_with(stencil, kernel, &cfg())
    }

    fn exec_on_test_grid_with(
        stencil: &Stencil,
        kernel: &Kernel,
        machine_cfg: &MachineConfig,
    ) -> Result<Vec<u32>, cmcc_cm2::exec::HazardError> {
        let rows = 6usize;
        let cols = kernel.width;
        let pad = stencil.borders().max_width() as usize;
        let src_stride = cols + 2 * pad;
        let src_words = (rows + 2 * pad) * src_stride;
        let n_coeffs = stencil.coeff_count();
        let res_base = src_words;
        let res_words = rows * cols;
        let coeff_base = res_base + res_words;
        let words = coeff_base + n_coeffs * res_words + 2;
        let mut mem = NodeMemory::new(words);
        for i in 0..src_words {
            mem.write(i, (i % 17) as f32 * 0.25 - 2.0);
        }
        for i in 0..n_coeffs * res_words {
            mem.write(coeff_base + i, (i % 5) as f32 * 0.5 + 0.1);
        }
        mem.write(words - 2, 1.0);
        mem.write(words - 1, 0.0);
        let src = FieldLayout {
            base: 0,
            row_stride: src_stride,
            row_offset: pad as i64,
            col_offset: pad as i64,
        };
        let res = FieldLayout {
            base: res_base,
            row_stride: cols,
            row_offset: 0,
            col_offset: 0,
        };
        let coeffs: Vec<FieldLayout> = (0..n_coeffs)
            .map(|a| FieldLayout {
                base: coeff_base + a * res_words,
                row_stride: cols,
                row_offset: 0,
                col_offset: 0,
            })
            .collect();
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: words - 2,
            zeros_addr: words - 1,
            start_row: rows as i64 - 1,
            lines: rows,
            col0: 0,
        };
        run_strip(kernel, &ctx, &mut mem, machine_cfg, ExecMode::Cycle)?;
        Ok((res_base..res_base + res_words)
            .map(|a| mem.read(a).to_bits())
            .collect())
    }

    #[test]
    fn bias_only_kernel_computes() {
        let stencil = Stencil::new(vec![], vec![0, 1], Boundary::Circular, 2).unwrap();
        let (kernel, info) = emit_kernel(&stencil, 4, Walk::North, &cfg(), 512).unwrap();
        assert_eq!(info.loads_per_line, 0);
        assert_eq!(info.unroll, 1);
        kernel.validate().unwrap();
        check_kernel(&stencil, 4, Walk::North);
    }

    /// Builds a (rows+2B)×(cols+2B) padded source, runs the kernel over
    /// a strip, and checks every result against direct evaluation. Also
    /// cross-checks cycle-accurate vs fast execution.
    fn check_kernel(stencil: &Stencil, width: usize, walk: Walk) {
        let (kernel, _) = emit_kernel(stencil, width, walk, &cfg(), 512).unwrap();
        kernel.validate().unwrap();

        let rows = 9usize;
        let cols = width; // one strip exactly
        let pad = stencil.borders().max_width() as usize;
        let src_stride = cols + 2 * pad;
        let src_words = (rows + 2 * pad) * src_stride;
        let n_coeffs = stencil.coeff_count();
        let res_base = src_words;
        let res_words = rows * cols;
        let coeff_base = res_base + res_words;
        let words = coeff_base + n_coeffs * res_words + 2;
        let ones_addr = words - 2;
        let zeros_addr = words - 1;

        let mut mem = NodeMemory::new(words);
        // Source: a deterministic non-symmetric pattern, including halo.
        let src_at = |r: i64, c: i64| (3 + 2 * r + 5 * c + r * c) as f32 * 0.125;
        for r in -(pad as i64)..(rows + pad) as i64 {
            for c in -(pad as i64)..(cols + pad) as i64 {
                let addr = ((r + pad as i64) * src_stride as i64 + (c + pad as i64)) as usize;
                mem.write(addr, src_at(r, c));
            }
        }
        let coeff_at = |a: usize, r: i64, c: i64| (1 + a) as f32 * 0.5 + (r - c) as f32 * 0.0625;
        for a in 0..n_coeffs {
            for r in 0..rows as i64 {
                for c in 0..cols as i64 {
                    let addr = coeff_base + a * res_words + (r * cols as i64 + c) as usize;
                    mem.write(addr, coeff_at(a, r, c));
                }
            }
        }
        mem.write(ones_addr, 1.0);
        mem.write(zeros_addr, 0.0);

        let src = FieldLayout {
            base: 0,
            row_stride: src_stride,
            row_offset: pad as i64,
            col_offset: pad as i64,
        };
        let res = FieldLayout {
            base: res_base,
            row_stride: cols,
            row_offset: 0,
            col_offset: 0,
        };
        let coeffs: Vec<FieldLayout> = (0..n_coeffs)
            .map(|a| FieldLayout {
                base: coeff_base + a * res_words,
                row_stride: cols,
                row_offset: 0,
                col_offset: 0,
            })
            .collect();
        let start_row = match walk {
            Walk::North => rows as i64 - 1,
            Walk::South => 0,
        };
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr,
            zeros_addr,
            start_row,
            lines: rows,
            col0: 0,
        };

        let mut fast_mem = mem.clone();
        let run = run_strip(&kernel, &ctx, &mut mem, &cfg(), ExecMode::Cycle)
            .unwrap_or_else(|e| panic!("width {width} {walk:?}: {e}"));
        assert!(run.cycles > 0);
        run_strip(&kernel, &ctx, &mut fast_mem, &cfg(), ExecMode::Fast).unwrap();

        for r in 0..rows as i64 {
            for c in 0..cols as i64 {
                // Direct evaluation in the same accumulation order.
                let mut want = 0.0f32;
                for tap in stencil.taps() {
                    let x = src_at(r + tap.offset.drow as i64, c + tap.offset.dcol as i64);
                    let coeff = match tap.coeff {
                        CoeffRef::Array(a) => coeff_at(a, r, c),
                        CoeffRef::Unit => 1.0,
                    };
                    want += coeff * x;
                }
                for &a in stencil.bias() {
                    want += coeff_at(a, r, c);
                }
                let addr = res_base + (r * cols as i64 + c) as usize;
                let got = mem.read(addr);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "width {width} {walk:?} at ({r}, {c}): got {got}, want {want}"
                );
                assert_eq!(got.to_bits(), fast_mem.read(addr).to_bits());
            }
        }
    }
}
