//! Pattern-matching Fortran assignment statements into stencil IR.
//!
//! The compiler "processes single arithmetic assignment statements of the
//! form `R = T + T + ... + T`" where each term is `c*s(x)`, `s(x)*c`,
//! `s(x)`, or `c`, and `s(x)` is a nesting of `CSHIFT`/`EOSHIFT`
//! applications over a single array name (§2). This module is that
//! pattern matcher. Statements outside the form are rejected with a
//! spanned [`RecognizeError`] — the feedback the paper's structured
//! comment directive was designed to surface ("a warning if the statement
//! could not be processed by this technique after all", §6).
//!
//! ## Argument convention
//!
//! The paper consistently writes positional shifts as
//! `CSHIFT(array, dim, shift)` — e.g. `CSHIFT(X, 1, -1)` for
//! `DIM=1, SHIFT=-1` — which differs from the Fortran 90 standard order
//! `CSHIFT(array, shift, dim)`. This implementation follows the *paper's*
//! convention for positional arguments and also accepts the unambiguous
//! keyword forms `DIM=`/`SHIFT=`.

use crate::offset::Offset;
use crate::stencil::{Boundary, CoeffRef, Stencil, Tap};
use cmcc_front::ast::{Arg, Assign, BinOp, Expr, UnaryOp};
use cmcc_front::span::Span;
use std::fmt;

/// A coefficient operand as written in the source.
#[derive(Debug, Clone, PartialEq)]
pub enum CoeffSpec {
    /// A whole-array reference by name.
    Named(String),
    /// A scalar literal (an extension over the paper, executed by
    /// streaming from a constant-filled page).
    Literal(f32),
}

impl fmt::Display for CoeffSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoeffSpec::Named(name) => f.write_str(name),
            CoeffSpec::Literal(v) => write!(f, "{v:?}"),
        }
    }
}

/// A fully recognized stencil statement: the IR plus the name bindings
/// the run-time library needs to marshal arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilSpec {
    /// The assigned array name.
    pub target: String,
    /// The shifted source array names, indexed by [`crate::stencil::Tap::source`].
    /// The paper's form has exactly one; [`recognize_extended`] admits
    /// several (its §9 future work).
    pub sources: Vec<String>,
    /// Coefficient operands; [`CoeffRef::Array`] indexes into this list.
    pub coeffs: Vec<CoeffSpec>,
    /// The stencil itself.
    pub stencil: Stencil,
}

impl StencilSpec {
    /// The primary (first) source array name.
    pub fn source(&self) -> &str {
        &self.sources[0]
    }
}

/// A statement that does not match the convolution form.
#[derive(Debug, Clone, PartialEq)]
pub struct RecognizeError {
    message: String,
    span: Span,
}

impl RecognizeError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        RecognizeError {
            message: message.into(),
            span,
        }
    }

    /// The explanation, phrased for the user's benefit.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The offending source span.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for RecognizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not a stencil statement: {}", self.message)
    }
}

impl std::error::Error for RecognizeError {}

/// Recognizes an assignment statement as a stencil computation.
///
/// # Errors
///
/// Returns [`RecognizeError`] when the statement is outside the sum-of-
/// products form: subtraction or division, shifts of more than one
/// variable, non-constant or out-of-range shift amounts, mixed
/// `CSHIFT`/`EOSHIFT`, or products of two shifted references.
///
/// # Examples
///
/// ```
/// use cmcc_front::parser::parse_assignment;
/// use cmcc_core::recognize::recognize;
///
/// let stmt = parse_assignment(
///     "R = C1 * CSHIFT(X, 1, -1) + C2 * X + C3 * CSHIFT(X, 1, +1)",
/// )?;
/// let spec = recognize(&stmt)?;
/// assert_eq!(spec.source(), "X");
/// assert_eq!(spec.stencil.taps().len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn recognize(stmt: &Assign) -> Result<StencilSpec, RecognizeError> {
    let _span = cmcc_obs::span(cmcc_obs::Phase::Recognize);
    Recognizer {
        multi: false,
        ..Recognizer::default()
    }
    .run(stmt)
}

/// Recognizes an assignment statement, additionally admitting shifts of
/// **several** source arrays in one statement — the paper's §9 future
/// work ("Future versions of the compiler should be able to handle all
/// ten terms as one stencil pattern"). Each distinct shifted variable
/// becomes a source, in order of first appearance.
///
/// # Errors
///
/// As for [`recognize`], except that multiple shifted variables are
/// accepted rather than rejected.
///
/// # Examples
///
/// ```
/// use cmcc_front::parser::parse_assignment;
/// use cmcc_core::recognize::recognize_extended;
///
/// // The Gordon Bell statement fused: nine taps on P plus the tenth
/// // term on P2 (the wavefield two steps before), one stencil.
/// let stmt = parse_assignment(
///     "R = C1 * CSHIFT(P, 1, -1) + C2 * P + C3 * CSHIFT(P, 1, +1) + C10 * CSHIFT(P2, 1, 0)",
/// )?;
/// let spec = recognize_extended(&stmt)?;
/// assert_eq!(spec.sources, vec!["P", "P2"]);
/// assert!(spec.stencil.is_multi_source());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn recognize_extended(stmt: &Assign) -> Result<StencilSpec, RecognizeError> {
    let _span = cmcc_obs::span(cmcc_obs::Phase::Recognize);
    Recognizer {
        multi: true,
        ..Recognizer::default()
    }
    .run(stmt)
}

/// A shifted reference: variable, accumulated offset, the shift kinds
/// encountered, and any explicit `BOUNDARY=` fill values.
#[derive(Debug, Clone)]
struct ShiftedRef {
    var: String,
    var_span: Span,
    offset: Offset,
    kinds: Vec<Boundary>,
    fills: Vec<(f32, Span)>,
}

/// A term before source-variable resolution.
#[derive(Debug, Clone)]
enum RawTerm {
    /// `coeff * shifted` (either operand order in the source).
    Product {
        coeff: RawCoeff,
        shifted: ShiftedRef,
    },
    /// A product of two bare names — which is the coefficient depends on
    /// which variable turns out to be the source.
    AmbiguousProduct {
        left: (String, Span),
        right: (String, Span),
        span: Span,
    },
    /// A lone shifted reference (unit coefficient) — or, if it is a bare
    /// name that is not the source, a bias term.
    Lone(ShiftedRef),
    /// A lone literal: a scalar bias.
    LoneLiteral(f32),
}

#[derive(Debug, Clone)]
enum RawCoeff {
    Named(String),
    Literal(f32),
}

#[derive(Default)]
struct Recognizer {
    coeffs: Vec<CoeffSpec>,
    /// Admit multiple shifted source variables (the §9 extension).
    multi: bool,
}

impl Recognizer {
    fn run(mut self, stmt: &Assign) -> Result<StencilSpec, RecognizeError> {
        let mut terms = Vec::new();
        flatten_sum(&stmt.value, &mut terms)?;
        let raw: Vec<RawTerm> = terms
            .iter()
            .map(|t| classify_term(t))
            .collect::<Result<_, _>>()?;

        let sources = resolve_sources(&raw, stmt, self.multi)?;
        let source_index = |name: &str| -> Option<u16> {
            sources
                .iter()
                .position(|s| s.eq_ignore_ascii_case(name))
                .map(|i| i as u16)
        };

        let mut taps = Vec::new();
        let mut bias = Vec::new();
        let mut kinds: Vec<Boundary> = Vec::new();
        let mut fills: Vec<(f32, Span)> = Vec::new();
        for term in raw {
            match term {
                RawTerm::Product { coeff, shifted } => {
                    let Some(si) = source_index(&shifted.var) else {
                        return Err(RecognizeError::new(
                            unknown_source_message(&shifted.var, &sources, self.multi),
                            shifted.var_span,
                        ));
                    };
                    kinds.extend(&shifted.kinds);
                    fills.extend(&shifted.fills);
                    let idx = self.intern(coeff);
                    taps.push(Tap {
                        offset: shifted.offset,
                        coeff: CoeffRef::Array(idx),
                        source: si,
                    });
                }
                RawTerm::AmbiguousProduct { left, right, span } => {
                    let (l_src, r_src) = (source_index(&left.0), source_index(&right.0));
                    let (coeff, si) = match (l_src, r_src) {
                        (None, Some(si)) => (left, si),
                        (Some(si), None) => (right, si),
                        (Some(_), Some(_)) => {
                            return Err(RecognizeError::new(
                                "term multiplies two source arrays together",
                                span,
                            ))
                        }
                        (None, None) => {
                            return Err(RecognizeError::new(
                                format!(
                                    "term references neither coefficient-times-source nor \
                                     source-times-coefficient (source is `{}`)",
                                    sources[0]
                                ),
                                span,
                            ))
                        }
                    };
                    let idx = self.intern(RawCoeff::Named(coeff.0));
                    taps.push(Tap {
                        offset: Offset::CENTER,
                        coeff: CoeffRef::Array(idx),
                        source: si,
                    });
                }
                RawTerm::Lone(shifted) => {
                    if let Some(si) = source_index(&shifted.var) {
                        kinds.extend(&shifted.kinds);
                        fills.extend(&shifted.fills);
                        taps.push(Tap {
                            offset: shifted.offset,
                            coeff: CoeffRef::Unit,
                            source: si,
                        });
                    } else if shifted.offset == Offset::CENTER && shifted.kinds.is_empty() {
                        // A bare non-source name: a bias coefficient term.
                        let idx = self.intern(RawCoeff::Named(shifted.var));
                        bias.push(idx);
                    } else {
                        return Err(RecognizeError::new(
                            unknown_source_message(&shifted.var, &sources, self.multi),
                            shifted.var_span,
                        ));
                    }
                }
                RawTerm::LoneLiteral(v) => {
                    let idx = self.intern(RawCoeff::Literal(v));
                    bias.push(idx);
                }
            }
        }

        let boundary = unify_boundary(&kinds, stmt.span)?;
        let mut stencil = Stencil::new(taps, bias, boundary, self.coeffs.len())
            .map_err(|e| RecognizeError::new(e.to_string(), stmt.span))?;
        // `BOUNDARY=` fill values must agree across the statement (one
        // halo is filled once).
        if let Some(&(first, _)) = fills.first() {
            if let Some(&(other, span)) = fills.iter().find(|(v, _)| v.to_bits() != first.to_bits())
            {
                return Err(RecognizeError::new(
                    format!("conflicting BOUNDARY= values in one statement: {first} and {other}"),
                    span,
                ));
            }
            stencil = stencil.with_fill(first);
        }

        if sources
            .iter()
            .any(|s| stmt.target.value.eq_ignore_ascii_case(s))
        {
            return Err(RecognizeError::new(
                "the result array must be distinct from the shifted source array",
                stmt.target.span,
            ));
        }

        Ok(StencilSpec {
            target: stmt.target.value.clone(),
            sources,
            coeffs: self.coeffs,
            stencil,
        })
    }

    fn intern(&mut self, coeff: RawCoeff) -> usize {
        let spec = match coeff {
            RawCoeff::Named(name) => CoeffSpec::Named(name),
            RawCoeff::Literal(v) => CoeffSpec::Literal(v),
        };
        let found = self.coeffs.iter().position(|c| match (c, &spec) {
            (CoeffSpec::Named(a), CoeffSpec::Named(b)) => a.eq_ignore_ascii_case(b),
            (CoeffSpec::Literal(a), CoeffSpec::Literal(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        });
        found.unwrap_or_else(|| {
            self.coeffs.push(spec);
            self.coeffs.len() - 1
        })
    }
}

/// Flattens a `+` chain, rejecting `-` and stray operators at term level.
fn flatten_sum<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) -> Result<(), RecognizeError> {
    match expr {
        Expr::Binary {
            op: BinOp::Add,
            lhs,
            rhs,
        } => {
            flatten_sum(lhs, out)?;
            flatten_sum(rhs, out)?;
            Ok(())
        }
        Expr::Binary { op: BinOp::Sub, .. } => Err(RecognizeError::new(
            "the right-hand side must be a sum of products; subtraction is not supported \
             (negate the coefficient array instead)",
            expr.span(),
        )),
        Expr::Unary {
            op: UnaryOp::Plus,
            operand,
            ..
        } => flatten_sum(operand, out),
        Expr::Unary {
            op: UnaryOp::Neg, ..
        } => Err(RecognizeError::new(
            "negated terms are not in the sum-of-products form (negate the coefficient \
             array instead)",
            expr.span(),
        )),
        other => {
            out.push(other);
            Ok(())
        }
    }
}

fn classify_term(term: &Expr) -> Result<RawTerm, RecognizeError> {
    match term {
        Expr::Binary {
            op: BinOp::Mul,
            lhs,
            rhs,
        } => classify_product(lhs, rhs, term.span()),
        Expr::Binary { op, .. } => Err(RecognizeError::new(
            format!("operator `{op}` is not allowed in a stencil term"),
            term.span(),
        )),
        Expr::Name(_) | Expr::Call { .. } => Ok(RawTerm::Lone(parse_shifted(term)?)),
        Expr::RealLit(v) => Ok(RawTerm::LoneLiteral(v.value as f32)),
        Expr::IntLit(v) => Ok(RawTerm::LoneLiteral(v.value as f32)),
        Expr::Unary { .. } => Err(RecognizeError::new(
            "unexpected sign inside a term",
            term.span(),
        )),
    }
}

fn classify_product(lhs: &Expr, rhs: &Expr, span: Span) -> Result<RawTerm, RecognizeError> {
    let l_shift = is_shift_call(lhs);
    let r_shift = is_shift_call(rhs);
    match (l_shift, r_shift) {
        (true, true) => Err(RecognizeError::new(
            "a term may not multiply two shifted references",
            span,
        )),
        (true, false) => Ok(RawTerm::Product {
            coeff: coeff_operand(rhs)?,
            shifted: parse_shifted(lhs)?,
        }),
        (false, true) => Ok(RawTerm::Product {
            coeff: coeff_operand(lhs)?,
            shifted: parse_shifted(rhs)?,
        }),
        (false, false) => match (lhs, rhs) {
            // Two bare names: the source is resolved statement-wide.
            (Expr::Name(l), Expr::Name(r)) => Ok(RawTerm::AmbiguousProduct {
                left: (l.value.clone(), l.span),
                right: (r.value.clone(), r.span),
                span,
            }),
            // literal * name or name * literal: the name must later prove
            // to be the source.
            (Expr::Name(n), other) | (other, Expr::Name(n)) => Ok(RawTerm::Product {
                coeff: coeff_operand(other)?,
                shifted: ShiftedRef {
                    var: n.value.clone(),
                    var_span: n.span,
                    offset: Offset::CENTER,
                    kinds: Vec::new(),
                    fills: Vec::new(),
                },
            }),
            _ => Err(RecognizeError::new(
                "term is not of the form coefficient * shifted-source",
                span,
            )),
        },
    }
}

fn coeff_operand(expr: &Expr) -> Result<RawCoeff, RecognizeError> {
    if let Some(v) = expr.as_const_real() {
        return Ok(RawCoeff::Literal(v as f32));
    }
    match expr {
        Expr::Name(n) => Ok(RawCoeff::Named(n.value.clone())),
        Expr::Call { name, .. } => Err(RecognizeError::new(
            format!(
                "`{}` is not a recognized stencil operation (only CSHIFT and EOSHIFT \
                 may be applied to the source)",
                name.value
            ),
            name.span,
        )),
        other => Err(RecognizeError::new(
            "coefficient must be an array name or a scalar literal",
            other.span(),
        )),
    }
}

fn is_shift_call(expr: &Expr) -> bool {
    matches!(expr, Expr::Call { name, .. }
        if name.value.eq_ignore_ascii_case("CSHIFT")
        || name.value.eq_ignore_ascii_case("EOSHIFT"))
}

/// Parses `s(x) ::= x | CSHIFT(s(x), k, m) | EOSHIFT(s(x), k, m)`.
fn parse_shifted(expr: &Expr) -> Result<ShiftedRef, RecognizeError> {
    match expr {
        Expr::Name(n) => Ok(ShiftedRef {
            var: n.value.clone(),
            var_span: n.span,
            offset: Offset::CENTER,
            kinds: Vec::new(),
            fills: Vec::new(),
        }),
        Expr::Call { name, args, span } => {
            let kind = if name.value.eq_ignore_ascii_case("CSHIFT") {
                Boundary::Circular
            } else if name.value.eq_ignore_ascii_case("EOSHIFT") {
                Boundary::ZeroFill
            } else {
                return Err(RecognizeError::new(
                    format!(
                        "only CSHIFT and EOSHIFT may appear in a stencil term, found `{}`",
                        name.value
                    ),
                    name.span,
                ));
            };
            let (inner, dim, shift, fill) = shift_args(args, *span, kind)?;
            let mut shifted = parse_shifted(inner)?;
            if !(1..=2).contains(&dim) {
                return Err(RecognizeError::new(
                    format!("DIM={dim} is out of range: compiled stencils are two-dimensional"),
                    *span,
                ));
            }
            shifted.offset = shifted.offset + Offset::from_shift(dim as u32, shift as i32);
            shifted.kinds.push(kind);
            if let Some(f) = fill {
                shifted.fills.push((f, *span));
            }
            Ok(shifted)
        }
        other => Err(RecognizeError::new(
            "expected an array name or a CSHIFT/EOSHIFT application",
            other.span(),
        )),
    }
}

/// Extracts `(array, dim, shift, boundary)` from a shift call's
/// arguments, honoring the paper's positional order and the
/// `DIM=`/`SHIFT=` keywords. `EOSHIFT` additionally accepts
/// `BOUNDARY=` with a compile-time scalar (the end-off fill value).
fn shift_args(
    args: &[Arg],
    span: Span,
    kind: Boundary,
) -> Result<(&Expr, i64, i64, Option<f32>), RecognizeError> {
    if args.is_empty() || args[0].keyword.is_some() {
        return Err(RecognizeError::new(
            "a shift needs the array as its first argument",
            span,
        ));
    }
    let array = &args[0].value;
    let mut dim: Option<i64> = None;
    let mut shift: Option<i64> = None;
    let mut fill: Option<f32> = None;
    let mut positional = 0;
    for arg in &args[1..] {
        if let Some(kw) = &arg.keyword {
            if kw.value.eq_ignore_ascii_case("BOUNDARY") {
                if kind != Boundary::ZeroFill {
                    return Err(RecognizeError::new(
                        "BOUNDARY= applies only to EOSHIFT",
                        kw.span,
                    ));
                }
                if fill.is_some() {
                    return Err(RecognizeError::new(
                        "shift argument given twice",
                        arg.value.span(),
                    ));
                }
                fill = Some(arg.value.as_const_real().ok_or_else(|| {
                    RecognizeError::new(
                        "BOUNDARY= must be a compile-time scalar constant",
                        arg.value.span(),
                    )
                })? as f32);
                continue;
            }
        }
        let slot = match &arg.keyword {
            Some(kw) if kw.value.eq_ignore_ascii_case("DIM") => &mut dim,
            Some(kw) if kw.value.eq_ignore_ascii_case("SHIFT") => &mut shift,
            Some(kw) => {
                return Err(RecognizeError::new(
                    format!("unknown keyword `{}` in shift", kw.value),
                    kw.span,
                ))
            }
            None => {
                positional += 1;
                match positional {
                    1 => &mut dim,
                    2 => &mut shift,
                    _ => {
                        return Err(RecognizeError::new(
                            "too many positional arguments in shift",
                            arg.value.span(),
                        ))
                    }
                }
            }
        };
        if slot.is_some() {
            return Err(RecognizeError::new(
                "shift argument given twice",
                arg.value.span(),
            ));
        }
        let value = arg.value.as_const_int().ok_or_else(|| {
            RecognizeError::new(
                "shift arguments must be compile-time integer constants",
                arg.value.span(),
            )
        })?;
        *slot = Some(value);
    }
    let dim = dim.ok_or_else(|| RecognizeError::new("shift is missing DIM", span))?;
    let shift = shift.ok_or_else(|| RecognizeError::new("shift is missing SHIFT", span))?;
    Ok((array, dim, shift, fill))
}

/// Explains a reference to a variable that is not a recognized source,
/// phrased for the active mode.
fn unknown_source_message(var: &str, sources: &[String], multi: bool) -> String {
    if multi {
        format!(
            "`{var}` is not among the shifted source arrays [{}]",
            sources.join(", ")
        )
    } else {
        format!(
            "all shiftings must shift the same variable name: \
             found `{var}` but the source is `{}`",
            sources[0]
        )
    }
}

/// Finds the shifted variables (one unless `multi`), or applies the
/// bare-name heuristics when the statement contains no shifts at all.
fn resolve_sources(
    raw: &[RawTerm],
    stmt: &Assign,
    multi: bool,
) -> Result<Vec<String>, RecognizeError> {
    let mut shifted_vars: Vec<(&str, Span)> = Vec::new();
    for term in raw {
        let sref = match term {
            RawTerm::Product { shifted, .. } => Some(shifted),
            RawTerm::Lone(shifted) if !shifted.kinds.is_empty() => Some(shifted),
            _ => None,
        };
        if let Some(s) = sref {
            if !shifted_vars
                .iter()
                .any(|(v, _)| v.eq_ignore_ascii_case(&s.var))
            {
                // Products with an empty kind list are `coeff * name`
                // where the name is only *presumed* source; count only
                // real shift applications as evidence.
                if !s.kinds.is_empty() {
                    shifted_vars.push((&s.var, s.var_span));
                }
            }
        }
    }
    if shifted_vars.len() > 1 && !multi {
        return Err(RecognizeError::new(
            format!(
                "all shiftings within an assignment must shift the same variable name; \
                 found `{}` and `{}`",
                shifted_vars[0].0, shifted_vars[1].0
            ),
            shifted_vars[1].1,
        ));
    }
    if !shifted_vars.is_empty() {
        return Ok(shifted_vars.iter().map(|(v, _)| (*v).to_owned()).collect());
    }
    // No shifts anywhere. Heuristics, in paper style `c * x`:
    // the second factor of the first product is the source.
    for term in raw {
        match term {
            RawTerm::AmbiguousProduct { right, .. } => return Ok(vec![right.0.clone()]),
            RawTerm::Product { shifted, .. } => return Ok(vec![shifted.var.clone()]),
            _ => {}
        }
    }
    // A single bare name (`R = X`).
    for term in raw {
        if let RawTerm::Lone(s) = term {
            return Ok(vec![s.var.clone()]);
        }
    }
    Err(RecognizeError::new(
        "statement references no source array",
        stmt.span,
    ))
}

fn unify_boundary(kinds: &[Boundary], span: Span) -> Result<Boundary, RecognizeError> {
    let mut result: Option<Boundary> = None;
    for &k in kinds {
        match result {
            None => result = Some(k),
            Some(prev) if prev == k => {}
            Some(_) => {
                return Err(RecognizeError::new(
                    "mixing CSHIFT and EOSHIFT in one statement is not supported by this \
                     implementation",
                    span,
                ))
            }
        }
    }
    Ok(result.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcc_front::parser::parse_assignment;

    fn spec(src: &str) -> StencilSpec {
        recognize(&parse_assignment(src).unwrap()).unwrap()
    }

    fn err(src: &str) -> RecognizeError {
        recognize(&parse_assignment(src).unwrap()).unwrap_err()
    }

    #[test]
    fn paper_five_point_cross() {
        let s = spec(
            "R = C1 * CSHIFT (X, DIM=1, SHIFT=-1) \
               + C2 * CSHIFT (X, DIM=2, SHIFT=-1) \
               + C3 * X \
               + C4 * CSHIFT (X, DIM=2, SHIFT=+1) \
               + C5 * CSHIFT (X, DIM=1, SHIFT=+1)",
        );
        assert_eq!(s.target, "R");
        assert_eq!(s.source(), "X");
        assert_eq!(s.coeffs.len(), 5);
        let offsets: Vec<_> = s.stencil.taps().iter().map(|t| t.offset).collect();
        assert_eq!(
            offsets,
            vec![
                Offset::new(-1, 0),
                Offset::new(0, -1),
                Offset::new(0, 0),
                Offset::new(0, 1),
                Offset::new(1, 0),
            ]
        );
        assert_eq!(s.stencil.useful_flops_per_point(), 9);
    }

    #[test]
    fn paper_nested_shift_square() {
        // §2: the 3×3 square expressed with nested CSHIFTs.
        let s = spec(
            "R = C1 * CSHIFT(CSHIFT (X, 1,-1) ,2, -1) \
               + C2 * CSHIFT(X, 1, -1) \
               + C3 * CSHIFT(CSHIFT (X,1, -1) ,2,+1) \
               + C4 * CSHIFT (X,2,-1) \
               + C5 * X \
               + C6 * CSHIFT (X,2,+1) \
               + C7 * CSHIFT (CSHIFT (X, 1,+1) ,2, -1) \
               + C8 * CSHIFT(X, 1,+1) \
               + C9 * CSHIFT(CSHIFT (X, 1,+1) ,2, +1)",
        );
        assert_eq!(s.stencil.taps().len(), 9);
        assert!(s.stencil.needs_corner_exchange());
        let b = s.stencil.borders();
        assert_eq!((b.north, b.south, b.east, b.west), (1, 1, 1, 1));
        assert_eq!(s.stencil.useful_flops_per_point(), 17);
    }

    #[test]
    fn coefficient_on_either_side() {
        let s = spec("R = CSHIFT(X, 1, -1) * C1 + C2 * X");
        assert_eq!(s.coeffs.len(), 2);
        assert_eq!(s.stencil.taps().len(), 2);
    }

    #[test]
    fn unit_taps_and_bias_terms() {
        let s = spec("R = CSHIFT(X, 1, -1) + X + B");
        assert_eq!(s.stencil.taps().len(), 2);
        assert!(s.stencil.taps().iter().all(|t| t.coeff == CoeffRef::Unit));
        assert_eq!(s.stencil.bias(), &[0]);
        assert_eq!(s.coeffs, vec![CoeffSpec::Named("B".into())]);
        assert!(s.stencil.needs_one_register());
    }

    #[test]
    fn scalar_literal_coefficients() {
        let s = spec("R = 0.25 * CSHIFT(X, 1, -1) + 0.5 * X + 0.25 * CSHIFT(X, 1, +1)");
        assert_eq!(s.coeffs.len(), 2); // 0.25 deduplicated
        assert_eq!(s.coeffs[0], CoeffSpec::Literal(0.25));
        assert_eq!(s.stencil.taps().len(), 3);
    }

    #[test]
    fn repeated_coefficient_names_are_interned() {
        let s = spec("R = C * CSHIFT(X, 1, -1) + c * CSHIFT(X, 1, +1)");
        assert_eq!(s.coeffs.len(), 1, "case-insensitive dedup");
    }

    #[test]
    fn bare_product_resolves_source_from_other_terms() {
        let s = spec("R = C1 * X + C2 * CSHIFT(X, 2, 1)");
        assert_eq!(s.source(), "X");
        assert_eq!(s.stencil.taps()[0].offset, Offset::CENTER);
    }

    #[test]
    fn bare_product_without_shifts_uses_second_factor() {
        let s = spec("R = C1 * X");
        assert_eq!(s.source(), "X");
        assert_eq!(s.coeffs, vec![CoeffSpec::Named("C1".into())]);
    }

    #[test]
    fn eoshift_selects_zero_fill() {
        let s = spec("R = C1 * EOSHIFT(X, 1, -1) + C2 * EOSHIFT(X, 2, 1)");
        assert_eq!(s.stencil.boundary(), Boundary::ZeroFill);
    }

    #[test]
    fn eoshift_boundary_fill_value() {
        let s = spec("R = C1 * EOSHIFT(X, 1, -1, BOUNDARY=2.5) + C2 * EOSHIFT(X, 2, 1)");
        assert_eq!(s.stencil.boundary(), Boundary::ZeroFill);
        assert_eq!(s.stencil.fill(), 2.5);
    }

    #[test]
    fn negative_boundary_fill() {
        let s = spec("R = 1.0 * EOSHIFT(X, 1, +1, BOUNDARY=-1)");
        assert_eq!(s.stencil.fill(), -1.0);
    }

    #[test]
    fn conflicting_boundary_fills_rejected() {
        let e =
            err("R = C1 * EOSHIFT(X, 1, -1, BOUNDARY=1.0) + C2 * EOSHIFT(X, 1, 1, BOUNDARY=2.0)");
        assert!(e.message().contains("conflicting"), "{}", e.message());
    }

    #[test]
    fn boundary_on_cshift_rejected() {
        let e = err("R = C1 * CSHIFT(X, 1, -1, BOUNDARY=1.0)");
        assert!(e.message().contains("EOSHIFT"), "{}", e.message());
    }

    #[test]
    fn non_constant_boundary_rejected() {
        let e = err("R = C1 * EOSHIFT(X, 1, -1, BOUNDARY=K)");
        assert!(e.message().contains("scalar constant"), "{}", e.message());
    }

    #[test]
    fn mixed_shift_kinds_rejected() {
        let e = err("R = C1 * CSHIFT(X, 1, -1) + C2 * EOSHIFT(X, 1, 1)");
        assert!(e.message().contains("mixing"), "{}", e.message());
    }

    #[test]
    fn mixed_shift_variables_rejected() {
        let e = err("R = C1 * CSHIFT(X, 1, -1) + C2 * CSHIFT(Y, 1, 1)");
        assert!(e.message().contains("same variable"), "{}", e.message());
    }

    #[test]
    fn subtraction_rejected_with_guidance() {
        let e = err("R = C1 * X - C2 * CSHIFT(X, 1, 1)");
        assert!(e.message().contains("subtraction"), "{}", e.message());
    }

    #[test]
    fn division_rejected() {
        let e = err("R = C1 / X");
        assert!(e.message().contains('/'), "{}", e.message());
    }

    #[test]
    fn product_of_two_shifts_rejected() {
        let e = err("R = CSHIFT(X, 1, 1) * CSHIFT(X, 2, 1)");
        assert!(e.message().contains("two shifted"), "{}", e.message());
    }

    #[test]
    fn non_constant_shift_rejected() {
        let e = err("R = C * CSHIFT(X, 1, K)");
        assert!(e.message().contains("constant"), "{}", e.message());
    }

    #[test]
    fn dim_out_of_range_rejected() {
        let e = err("R = C * CSHIFT(X, 3, 1)");
        assert!(e.message().contains("DIM=3"), "{}", e.message());
    }

    #[test]
    fn keyword_shift_args_in_any_order() {
        let s = spec("R = C * CSHIFT(X, SHIFT=-2, DIM=2)");
        assert_eq!(s.stencil.taps()[0].offset, Offset::new(0, -2));
    }

    #[test]
    fn duplicate_shift_arg_rejected() {
        let e = err("R = C * CSHIFT(X, 1, DIM=2)");
        assert!(e.message().contains("twice"), "{}", e.message());
    }

    #[test]
    fn target_equal_to_source_rejected() {
        let e = err("X = C * CSHIFT(X, 1, 1)");
        assert!(e.message().contains("distinct"), "{}", e.message());
    }

    #[test]
    fn other_functions_rejected() {
        let e = err("R = C * TRANSPOSE(X)");
        assert!(e.message().contains("TRANSPOSE"), "{}", e.message());
    }

    #[test]
    fn source_times_source_rejected() {
        let e = err("R = X * X + C * CSHIFT(X, 1, 1)");
        assert!(e.message().contains("two source arrays"), "{}", e.message());
    }

    #[test]
    fn paper_asymmetric_pattern() {
        // §2's uncentered example.
        let s = spec(
            "R = C1 * X \
               + C2 * CSHIFT (X,2,+1) \
               + C3 * CSHIFT(CSHIFT (X, 1,+1) ,2,-1) \
               + C4 * CSHIFT (X, 1,+1) \
               + C5 * CSHIFT (X,1,+2)",
        );
        let b = s.stencil.borders();
        assert_eq!((b.north, b.south, b.east, b.west), (0, 2, 1, 1));
    }
}
