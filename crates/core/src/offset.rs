//! Grid offsets: the displacement a shifted array reference reads from.

use std::fmt;
use std::ops::Add;

/// A relative grid position `(drow, dcol)`.
///
/// Fortran's `CSHIFT(X, DIM=k, SHIFT=m)` produces an array whose element
/// `i` is `X(i+m)` along dimension `k`; a term built from such shifts
/// therefore reads the source at `position + offset`, where nested shifts
/// compose additively. `DIM=1` is the row axis, `DIM=2` the column axis.
///
/// # Examples
///
/// ```
/// use cmcc_core::offset::Offset;
///
/// // CSHIFT(CSHIFT(X, 1, -1), 2, +1) reads X(r-1, c+1).
/// let o = Offset::new(-1, 0) + Offset::new(0, 1);
/// assert_eq!(o, Offset::new(-1, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Offset {
    /// Row displacement (negative = north).
    pub drow: i32,
    /// Column displacement (negative = west).
    pub dcol: i32,
}

impl Offset {
    /// The stencil center.
    pub const CENTER: Offset = Offset { drow: 0, dcol: 0 };

    /// Creates an offset.
    pub fn new(drow: i32, dcol: i32) -> Self {
        Offset { drow, dcol }
    }

    /// The offset of a single `CSHIFT(_, DIM=dim, SHIFT=shift)`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not 1 or 2 (callers validate first).
    pub fn from_shift(dim: u32, shift: i32) -> Self {
        match dim {
            1 => Offset::new(shift, 0),
            2 => Offset::new(0, shift),
            other => panic!("dimension {other} out of range for a 2-D stencil"),
        }
    }

    /// Whether this offset is diagonal (touches a corner-neighbor
    /// subgrid): both components nonzero.
    pub fn is_diagonal(&self) -> bool {
        self.drow != 0 && self.dcol != 0
    }

    /// Chebyshev radius: how far the offset extends in any direction.
    pub fn radius(&self) -> u32 {
        self.drow.unsigned_abs().max(self.dcol.unsigned_abs())
    }
}

impl Add for Offset {
    type Output = Offset;

    fn add(self, rhs: Offset) -> Offset {
        Offset::new(self.drow + rhs.drow, self.dcol + rhs.dcol)
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+}, {:+})", self.drow, self.dcol)
    }
}

/// The four border widths of a stencil: "The amount by which it extends
/// in each direction from its center we will call the border width for
/// that pattern in that direction" (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Borders {
    /// Rows of neighbor data needed from the north.
    pub north: u32,
    /// Rows needed from the south.
    pub south: u32,
    /// Columns needed from the east.
    pub east: u32,
    /// Columns needed from the west.
    pub west: u32,
}

impl Borders {
    /// Computes border widths from a set of offsets.
    pub fn of<'a>(offsets: impl IntoIterator<Item = &'a Offset>) -> Self {
        let mut b = Borders::default();
        for o in offsets {
            b.north = b.north.max((-o.drow).max(0) as u32);
            b.south = b.south.max(o.drow.max(0) as u32);
            b.west = b.west.max((-o.dcol).max(0) as u32);
            b.east = b.east.max(o.dcol.max(0) as u32);
        }
        b
    }

    /// The largest of the four widths. The halo protocol pads "on all
    /// four sides by the largest of the four border widths" (§5.1).
    pub fn max_width(&self) -> u32 {
        self.north.max(self.south).max(self.east).max(self.west)
    }

    /// Whether the stencil needs no neighbor data at all.
    pub fn is_zero(&self) -> bool {
        self.max_width() == 0
    }
}

impl fmt::Display for Borders {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} S={} E={} W={}",
            self.north, self.south, self.east, self.west
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_offsets_follow_fortran_semantics() {
        assert_eq!(Offset::from_shift(1, -1), Offset::new(-1, 0));
        assert_eq!(Offset::from_shift(2, 3), Offset::new(0, 3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dim_three_panics() {
        let _ = Offset::from_shift(3, 1);
    }

    #[test]
    fn composition_is_additive() {
        let o = Offset::from_shift(1, -2) + Offset::from_shift(2, 1) + Offset::from_shift(1, 1);
        assert_eq!(o, Offset::new(-1, 1));
    }

    #[test]
    fn diagonal_detection() {
        assert!(Offset::new(1, -1).is_diagonal());
        assert!(!Offset::new(0, 5).is_diagonal());
        assert!(!Offset::CENTER.is_diagonal());
    }

    #[test]
    fn paper_asymmetric_border_example() {
        // §5.1 example: East 1, North 2, South 0, West 3.
        let offsets = [
            Offset::new(0, 1),
            Offset::new(-2, 0),
            Offset::new(0, -3),
            Offset::new(-1, -1),
        ];
        let b = Borders::of(&offsets);
        assert_eq!(b.east, 1);
        assert_eq!(b.north, 2);
        assert_eq!(b.south, 0);
        assert_eq!(b.west, 3);
        assert_eq!(b.max_width(), 3);
    }

    #[test]
    fn center_only_stencil_has_zero_borders() {
        let b = Borders::of(&[Offset::CENTER]);
        assert!(b.is_zero());
    }

    #[test]
    fn radius_is_chebyshev() {
        assert_eq!(Offset::new(-2, 1).radius(), 2);
        assert_eq!(Offset::new(0, -3).radius(), 3);
    }

    #[test]
    fn display_shows_signs() {
        assert_eq!(Offset::new(-1, 2).to_string(), "(-1, +2)");
    }
}
