//! Rendering stencil IR back to Fortran source.
//!
//! The inverse of [`mod@crate::recognize`]: useful for diagnostics, for
//! persisting compiled patterns, and for the round-trip property the
//! test suite leans on (`recognize(unparse(s)) == s`).

use crate::recognize::{CoeffSpec, StencilSpec};
use crate::stencil::{Boundary, CoeffRef, Stencil};

/// Renders a recognized statement back to Fortran, with its original
/// array names.
///
/// # Examples
///
/// ```
/// use cmcc_core::patterns::PaperPattern;
/// use cmcc_core::recognize::recognize;
/// use cmcc_core::unparse::unparse_spec;
/// use cmcc_front::parser::parse_assignment;
///
/// let spec = PaperPattern::Cross5.spec().unwrap();
/// let text = unparse_spec(&spec);
/// let again = recognize(&parse_assignment(&text)?)?;
/// assert_eq!(again.stencil, spec.stencil);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn unparse_spec(spec: &StencilSpec) -> String {
    let coeff_name = |i: usize| match &spec.coeffs[i] {
        CoeffSpec::Named(n) => n.clone(),
        CoeffSpec::Literal(v) => format_literal(*v),
    };
    let source_name = |s: u16| spec.sources[s as usize].clone();
    render(&spec.stencil, &spec.target, &source_name, &coeff_name)
}

/// Renders bare stencil IR to Fortran with synthesized names: target
/// `R`, sources `X` (or `X0`, `X1`, … when multi-source), coefficients
/// `C0`, `C1`, ….
pub fn unparse_stencil(stencil: &Stencil) -> String {
    let multi = stencil.is_multi_source();
    let source_name = move |s: u16| {
        if multi {
            format!("X{s}")
        } else {
            "X".to_owned()
        }
    };
    render(stencil, "R", &source_name, &|i| format!("C{i}"))
}

fn format_literal(v: f32) -> String {
    // A plain integer-valued literal must still parse as a real.
    if v == v.trunc() && v.abs() < 1.0e6 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn render(
    stencil: &Stencil,
    target: &str,
    source_name: &dyn Fn(u16) -> String,
    coeff_name: &dyn Fn(usize) -> String,
) -> String {
    let kw = match stencil.boundary() {
        Boundary::Circular => "CSHIFT",
        Boundary::ZeroFill => "EOSHIFT",
    };
    // A nonzero fill value is attached to the first EOSHIFT rendered.
    let mut fill_pending = stencil.boundary() == Boundary::ZeroFill && stencil.fill() != 0.0;
    let mut terms = Vec::new();
    for tap in stencil.taps() {
        let mut sx = source_name(tap.source);
        let mut shifted = false;
        let mut boundary_arg = || -> String {
            if std::mem::take(&mut fill_pending) {
                format!(", BOUNDARY={}", format_literal(stencil.fill()))
            } else {
                String::new()
            }
        };
        if tap.offset.drow != 0 {
            sx = format!("{kw}({sx}, 1, {:+}{})", tap.offset.drow, boundary_arg());
            shifted = true;
        }
        if tap.offset.dcol != 0 {
            sx = format!("{kw}({sx}, 2, {:+}{})", tap.offset.dcol, boundary_arg());
            shifted = true;
        }
        // A bare center reference of a non-primary source would read as a
        // bias coefficient; a zero shift keeps it a source reference.
        if !shifted && (tap.source != 0 || stencil.is_multi_source()) {
            sx = format!("{kw}({sx}, 1, 0)");
        }
        match tap.coeff {
            CoeffRef::Array(a) => terms.push(format!("{} * {sx}", coeff_name(a))),
            CoeffRef::Unit => terms.push(sx),
        }
    }
    for &b in stencil.bias() {
        terms.push(coeff_name(b));
    }
    format!("{target} = {}", terms.join(" + "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PaperPattern;
    use crate::recognize::{recognize, recognize_extended};
    use crate::stencil::Tap;
    use cmcc_front::parser::parse_assignment;

    #[test]
    fn paper_patterns_round_trip() {
        for p in PaperPattern::ALL {
            let spec = p.spec().unwrap();
            let text = unparse_spec(&spec);
            let again = recognize(&parse_assignment(&text).unwrap())
                .unwrap_or_else(|e| panic!("{p}: `{text}`: {e}"));
            assert_eq!(again.stencil, spec.stencil, "{p}");
            assert_eq!(again.sources, spec.sources, "{p}");
        }
    }

    #[test]
    fn synthesized_names_round_trip() {
        let s = Stencil::new(
            vec![Tap::unit(0, 0), Tap::new(-1, 2, 0)],
            vec![1],
            Boundary::ZeroFill,
            2,
        )
        .unwrap();
        let text = unparse_stencil(&s);
        assert!(text.contains("EOSHIFT"));
        let again = recognize(&parse_assignment(&text).unwrap()).unwrap();
        assert_eq!(again.stencil, s);
    }

    #[test]
    fn multi_source_round_trips_with_zero_shifts() {
        let s = Stencil::new(
            vec![
                Tap::on_source(0, -1, 0, 0),
                Tap::on_source(1, 0, 0, 1), // center tap of source 1
                Tap::on_source(1, 0, 1, 2),
            ],
            vec![],
            Boundary::Circular,
            3,
        )
        .unwrap();
        let text = unparse_stencil(&s);
        let again = recognize_extended(&parse_assignment(&text).unwrap())
            .unwrap_or_else(|e| panic!("`{text}`: {e}"));
        assert_eq!(again.stencil, s);
        assert_eq!(again.sources, vec!["X0", "X1"]);
    }

    #[test]
    fn boundary_fill_round_trips() {
        let spec = recognize(
            &parse_assignment("R = 1.0 * EOSHIFT(X, 1, -1, BOUNDARY=3.5) + 2.0 * EOSHIFT(X, 2, 1)")
                .unwrap(),
        )
        .unwrap();
        assert_eq!(spec.stencil.fill(), 3.5);
        let text = unparse_spec(&spec);
        assert!(text.contains("BOUNDARY=3.5"), "{text}");
        let again = recognize(&parse_assignment(&text).unwrap()).unwrap();
        assert_eq!(again.stencil, spec.stencil);
        assert_eq!(again.stencil.fill(), 3.5);
    }

    #[test]
    fn literal_coefficients_render_as_reals() {
        let spec =
            recognize(&parse_assignment("R = 2 * X + 0.25 * CSHIFT(X, 1, 1)").unwrap()).unwrap();
        let text = unparse_spec(&spec);
        assert!(text.contains("2.0 * X"), "{text}");
        assert!(text.contains("0.25"), "{text}");
        let again = recognize(&parse_assignment(&text).unwrap()).unwrap();
        assert_eq!(again.stencil, spec.stencil);
        assert_eq!(again.coeffs, spec.coeffs);
    }
}
