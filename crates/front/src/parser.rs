//! Recursive-descent parser for the Fortran 90 subset.
//!
//! The grammar covers exactly what the Connection Machine Convolution
//! Compiler consumes: expressions over names, literals, `+ - * /`, calls
//! with positional or keyword arguments, whole-array assignment statements,
//! and `SUBROUTINE … END` units with `REAL, ARRAY(:,:) :: …` declarations.

use crate::ast::{Arg, Assign, BinOp, Decl, DirectedStmt, Expr, Program, Subroutine, UnaryOp};
use crate::error::{ParseError, Result};
use crate::lexer::lex;
use crate::span::Spanned;
use crate::token::{Token, TokenKind};

/// Parses a single assignment statement, e.g.
/// `R = C1 * CSHIFT(X, DIM=1, SHIFT=-1) + C3 * X`.
///
/// Trailing newlines are permitted; any other trailing tokens are an error.
///
/// # Errors
///
/// Returns a [`ParseError`] with a span on malformed input.
///
/// # Examples
///
/// ```
/// use cmcc_front::parser::parse_assignment;
///
/// let stmt = parse_assignment("R = C1 * CSHIFT(X, 1, -1) + C2 * X")?;
/// assert_eq!(stmt.target.value, "R");
/// # Ok::<(), cmcc_front::error::ParseError>(())
/// ```
pub fn parse_assignment(source: &str) -> Result<Assign> {
    let mut p = Parser::new(source)?;
    p.skip_newlines();
    let stmt = p.assignment()?;
    p.skip_newlines();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a complete `SUBROUTINE … END` unit.
///
/// # Errors
///
/// Returns a [`ParseError`] with a span on malformed input.
///
/// # Examples
///
/// ```
/// use cmcc_front::parser::parse_subroutine;
///
/// let src = "
/// SUBROUTINE CROSS (R, X, C1)
/// REAL, ARRAY(:, :) :: R, X, C1
/// R = C1 * X
/// END
/// ";
/// let sub = parse_subroutine(src)?;
/// assert_eq!(sub.name.value, "CROSS");
/// assert_eq!(sub.params.len(), 3);
/// assert_eq!(sub.body.len(), 1);
/// # Ok::<(), cmcc_front::error::ParseError>(())
/// ```
pub fn parse_subroutine(source: &str) -> Result<Subroutine> {
    let mut p = Parser::new(source)?;
    p.skip_newlines();
    let sub = p.subroutine()?;
    p.skip_newlines();
    p.expect_eof()?;
    Ok(sub)
}

/// Parses a whole program unit: a sequence of assignment statements,
/// each optionally preceded by a `!CMF$ …` structured-comment directive
/// on its own line (paper §6).
///
/// # Errors
///
/// Returns a [`ParseError`] with a span on malformed input.
///
/// # Examples
///
/// ```
/// use cmcc_front::parser::parse_program;
///
/// let program = parse_program(
///     "Q = A + B\n\
///      !CMF$ STENCIL\n\
///      R = C1 * CSHIFT(X, 1, -1) + C2 * X\n",
/// )?;
/// assert_eq!(program.stmts.len(), 2);
/// assert!(program.stmts[0].directive.is_none());
/// assert_eq!(program.stmts[1].directive.as_ref().unwrap().value, "STENCIL");
/// # Ok::<(), cmcc_front::error::ParseError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program> {
    let mut p = Parser::new(source)?;
    let mut stmts = Vec::new();
    loop {
        p.skip_newlines();
        let directive = p.take_directive()?;
        p.skip_newlines();
        if p.at(&TokenKind::Eof) {
            if let Some(d) = directive {
                return Err(ParseError::new(
                    "directive is not followed by a statement",
                    d.span,
                ));
            }
            break;
        }
        let stmt = p.assignment()?;
        p.end_of_statement()?;
        stmts.push(DirectedStmt { directive, stmt });
    }
    Ok(Program { stmts })
}

/// Parses an expression on its own (used by tests and the s-expression
/// front end).
///
/// # Errors
///
/// Returns a [`ParseError`] with a span on malformed input.
pub fn parse_expression(source: &str) -> Result<Expr> {
    let mut p = Parser::new(source)?;
    p.skip_newlines();
    let expr = p.expression()?;
    p.skip_newlines();
    p.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(source: &str) -> Result<Self> {
        Ok(Parser {
            tokens: lex(source)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let tok = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn unexpected(&self, what: &str) -> ParseError {
        let tok = self.peek();
        ParseError::new(format!("{what}, found {}", tok.kind.describe()), tok.span)
    }

    fn skip_newlines(&mut self) {
        while self.at(&TokenKind::Newline) {
            self.bump();
        }
    }

    fn end_of_statement(&mut self) -> Result<()> {
        match &self.peek().kind {
            TokenKind::Newline => {
                self.skip_newlines();
                Ok(())
            }
            TokenKind::Eof => Ok(()),
            _ => Err(self.unexpected("expected end of statement")),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("expected end of input"))
        }
    }

    /// Consumes a directive token, if one is next.
    fn take_directive(&mut self) -> Result<Option<Spanned<String>>> {
        let tok = self.peek().clone();
        if let TokenKind::Directive(text) = tok.kind {
            self.bump();
            return Ok(Some(Spanned::new(text, tok.span)));
        }
        Ok(None)
    }

    fn ident(&mut self) -> Result<Spanned<String>> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Spanned::new(name, tok.span))
            }
            _ => Err(self.unexpected("expected an identifier")),
        }
    }

    fn keyword(&mut self, word: &str) -> Result<Token> {
        if self.peek().kind.is_keyword(word) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("expected `{word}`")))
        }
    }

    // expression := term (('+' | '-') term)*
    fn expression(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    // term := factor (('*' | '/') factor)*
    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    // factor := ('+' | '-') factor | primary
    fn factor(&mut self) -> Result<Expr> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Plus => {
                self.bump();
                let operand = self.factor()?;
                let span = tok.span.merge(operand.span());
                Ok(Expr::Unary {
                    op: UnaryOp::Plus,
                    operand: Box::new(operand),
                    span,
                })
            }
            TokenKind::Minus => {
                self.bump();
                let operand = self.factor()?;
                let span = tok.span.merge(operand.span());
                Ok(Expr::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(operand),
                    span,
                })
            }
            _ => self.primary(),
        }
    }

    // primary := name | name '(' args ')' | literal | '(' expression ')'
    fn primary(&mut self) -> Result<Expr> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Ident(name) => {
                self.bump();
                let name = Spanned::new(name, tok.span);
                if self.at(&TokenKind::LParen) {
                    self.call(name)
                } else {
                    Ok(Expr::Name(name))
                }
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(Spanned::new(v, tok.span)))
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(Expr::RealLit(Spanned::new(v, tok.span)))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expression()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            _ => Err(self.unexpected("expected an expression")),
        }
    }

    fn call(&mut self, name: Spanned<String>) -> Result<Expr> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.argument()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let close = self.expect(TokenKind::RParen)?;
        let span = name.span.merge(close.span);
        Ok(Expr::Call { name, args, span })
    }

    // argument := IDENT '=' expression | expression
    fn argument(&mut self) -> Result<Arg> {
        // Keyword form requires lookahead: IDENT followed by '='.
        if let TokenKind::Ident(name) = &self.peek().kind {
            let name = name.clone();
            let span = self.peek().span;
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Equals) {
                self.bump(); // ident
                self.bump(); // '='
                let value = self.expression()?;
                return Ok(Arg::keyword(Spanned::new(name, span), value));
            }
        }
        Ok(Arg::positional(self.expression()?))
    }

    // assignment := IDENT '=' expression
    fn assignment(&mut self) -> Result<Assign> {
        let target = self.ident()?;
        self.expect(TokenKind::Equals)?;
        let value = self.expression()?;
        let span = target.span.merge(value.span());
        Ok(Assign {
            target,
            value,
            span,
        })
    }

    // subroutine := 'SUBROUTINE' IDENT '(' params ')' NEWLINE
    //               decl* assign* 'END' ['SUBROUTINE' [IDENT]]
    fn subroutine(&mut self) -> Result<Subroutine> {
        let kw = self.keyword("SUBROUTINE")?;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                params.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        self.end_of_statement()?;

        let mut decls = Vec::new();
        while self.peek().kind.is_keyword("REAL")
            || self.peek().kind.is_keyword("INTEGER")
            || self.peek().kind.is_keyword("DOUBLE")
        {
            decls.push(self.declaration()?);
            self.end_of_statement()?;
        }

        let mut body = Vec::new();
        while !self.peek().kind.is_keyword("END") {
            if self.at(&TokenKind::Eof) {
                return Err(self.unexpected("expected `END`"));
            }
            body.push(self.assignment()?);
            self.end_of_statement()?;
        }
        let mut end_tok = self.keyword("END")?;
        if self.peek().kind.is_keyword("SUBROUTINE") {
            end_tok = self.bump();
            if matches!(self.peek().kind, TokenKind::Ident(_)) {
                end_tok = self.bump();
            }
        }
        Ok(Subroutine {
            span: kw.span.merge(end_tok.span),
            name,
            params,
            decls,
            body,
        })
    }

    // declaration := type [',' 'ARRAY' '(' ':' (',' ':')* ')'] '::' names
    //              | type names          (F77-style, no '::')
    fn declaration(&mut self) -> Result<Decl> {
        let type_name = self.ident()?;
        // Consume `PRECISION` of `DOUBLE PRECISION`.
        if type_name.value.eq_ignore_ascii_case("DOUBLE") {
            self.keyword("PRECISION")?;
        }
        let mut rank = 0;
        if self.eat(&TokenKind::Comma) {
            self.keyword("ARRAY")?;
            self.expect(TokenKind::LParen)?;
            loop {
                self.expect(TokenKind::Colon)?;
                rank += 1;
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        self.eat(&TokenKind::ColonColon);
        let mut names = Vec::new();
        loop {
            names.push(self.ident()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Decl {
            type_name,
            rank,
            names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_five_point_cross() {
        let src = "R = C1 * CSHIFT (X, DIM=1, SHIFT=-1) &
                     + C2 * CSHIFT (X, DIM=2, SHIFT=-1) &
                     + C3 * X &
                     + C4 * CSHIFT (X, DIM=2, SHIFT=+1) &
                     + C5 * CSHIFT (X, DIM=1, SHIFT=+1)";
        let stmt = parse_assignment(src).unwrap();
        assert_eq!(stmt.target.value, "R");
        // Left-associated chain of four adds.
        let mut adds = 0;
        let mut cur = &stmt.value;
        while let Expr::Binary {
            op: BinOp::Add,
            lhs,
            ..
        } = cur
        {
            adds += 1;
            cur = lhs;
        }
        assert_eq!(adds, 4);
    }

    #[test]
    fn keyword_and_positional_args() {
        let e = parse_expression("CSHIFT(X, DIM=1, SHIFT=-1)").unwrap();
        let Expr::Call { name, args, .. } = e else {
            panic!("not a call")
        };
        assert_eq!(name.value, "CSHIFT");
        assert_eq!(args.len(), 3);
        assert!(args[0].keyword.is_none());
        assert_eq!(args[1].keyword.as_ref().unwrap().value, "DIM");
        assert_eq!(args[2].value.as_const_int(), Some(-1));
    }

    #[test]
    fn nested_cshift_parses() {
        let e = parse_expression("CSHIFT(CSHIFT(X, 1, -1), 2, +1)").unwrap();
        let Expr::Call { args, .. } = &e else {
            panic!()
        };
        assert!(matches!(args[0].value, Expr::Call { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expression("A + B * C").unwrap();
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &e
        else {
            panic!("expected top-level add: {e}")
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn unary_minus_binds_tighter_than_add() {
        let e = parse_expression("-A + B").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn parenthesized_expression() {
        let e = parse_expression("(A + B) * C").unwrap();
        let Expr::Binary {
            op: BinOp::Mul,
            lhs,
            ..
        } = &e
        else {
            panic!()
        };
        assert!(matches!(**lhs, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn parses_paper_subroutine() {
        let src = "
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY( :, : ) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
END
";
        let sub = parse_subroutine(src).unwrap();
        assert_eq!(sub.name.value, "CROSS");
        assert_eq!(sub.params.len(), 7);
        assert_eq!(sub.decls.len(), 1);
        assert_eq!(sub.decls[0].rank, 2);
        assert_eq!(sub.decls[0].names.len(), 7);
        assert_eq!(sub.body.len(), 1);
        assert_eq!(sub.rank_of("x"), Some(2));
    }

    #[test]
    fn end_subroutine_with_name() {
        let src = "SUBROUTINE S (R, X)\nREAL, ARRAY(:,:) :: R, X\nR = X\nEND SUBROUTINE S";
        let sub = parse_subroutine(src).unwrap();
        assert_eq!(sub.body.len(), 1);
    }

    #[test]
    fn multiple_assignments_in_body() {
        let src = "SUBROUTINE S (R, Q, X)\nREAL, ARRAY(:,:) :: R, Q, X\nR = X\nQ = X\nEND";
        let sub = parse_subroutine(src).unwrap();
        assert_eq!(sub.body.len(), 2);
    }

    #[test]
    fn missing_end_reports_error() {
        let err = parse_subroutine("SUBROUTINE S (X)\nREAL, ARRAY(:,:) :: X\n").unwrap_err();
        assert!(err.message().contains("END"), "{}", err.message());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_assignment("R = X Y").unwrap_err();
        assert!(
            err.message().contains("end of statement") || err.message().contains("end of input")
        );
    }

    #[test]
    fn error_spans_point_at_problem() {
        let src = "R = C1 * ,";
        let err = parse_assignment(src).unwrap_err();
        assert_eq!(err.span().slice(src), ",");
    }

    #[test]
    fn division_parses() {
        let e = parse_expression("A / B / C").unwrap();
        // Left associative: (A/B)/C
        let Expr::Binary {
            op: BinOp::Div,
            lhs,
            ..
        } = &e
        else {
            panic!()
        };
        assert!(matches!(**lhs, Expr::Binary { op: BinOp::Div, .. }));
    }

    #[test]
    fn subtraction_of_terms() {
        let e = parse_expression("A - B * X").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Sub, .. }));
    }

    #[test]
    fn empty_argument_list() {
        let e = parse_expression("F()").unwrap();
        let Expr::Call { args, .. } = e else { panic!() };
        assert!(args.is_empty());
    }
}
