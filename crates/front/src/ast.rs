//! Abstract syntax for the Fortran 90 subset the convolution compiler
//! accepts: whole-array assignment statements and the `SUBROUTINE` wrapper
//! the paper's second implementation required.

use crate::span::{Span, Spanned};
use std::fmt;

/// A binary operator appearing in an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// The operator's surface syntax.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Unary `-`
    Neg,
    /// Unary `+`
    Plus,
}

/// An actual argument, optionally with a keyword (`DIM=1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    /// `Some("DIM")` for `DIM=1`; `None` for positional arguments.
    pub keyword: Option<Spanned<String>>,
    /// The argument expression.
    pub value: Expr,
}

impl Arg {
    /// A positional argument.
    pub fn positional(value: Expr) -> Self {
        Arg {
            keyword: None,
            value,
        }
    }

    /// A keyword argument.
    pub fn keyword(name: Spanned<String>, value: Expr) -> Self {
        Arg {
            keyword: Some(name),
            value,
        }
    }
}

/// An expression in the Fortran subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A whole-array or scalar name reference.
    Name(Spanned<String>),
    /// An integer literal.
    IntLit(Spanned<i64>),
    /// A real literal.
    RealLit(Spanned<f64>),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Its operand.
        operand: Box<Expr>,
        /// Span of the whole expression.
        span: Span,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// An intrinsic or function call such as `CSHIFT(X, DIM=1, SHIFT=-1)`.
    Call {
        /// The called name.
        name: Spanned<String>,
        /// The argument list.
        args: Vec<Arg>,
        /// Span of the whole call.
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Name(n) => n.span,
            Expr::IntLit(v) => v.span,
            Expr::RealLit(v) => v.span,
            Expr::Unary { span, .. } => *span,
            Expr::Binary { lhs, rhs, .. } => lhs.span().merge(rhs.span()),
            Expr::Call { span, .. } => *span,
        }
    }

    /// Evaluates the expression as a compile-time integer, folding unary
    /// signs. Returns `None` for anything else. Used for `SHIFT=` amounts.
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Expr::IntLit(v) => Some(v.value),
            Expr::Unary {
                op: UnaryOp::Neg,
                operand,
                ..
            } => operand.as_const_int().map(|v| -v),
            Expr::Unary {
                op: UnaryOp::Plus,
                operand,
                ..
            } => operand.as_const_int(),
            _ => None,
        }
    }

    /// Evaluates the expression as a compile-time real constant, folding
    /// unary signs over real and integer literals. Used for signed
    /// literal coefficients like `-1.0 * CSHIFT(…)`.
    pub fn as_const_real(&self) -> Option<f64> {
        match self {
            Expr::RealLit(v) => Some(v.value),
            Expr::IntLit(v) => Some(v.value as f64),
            Expr::Unary {
                op: UnaryOp::Neg,
                operand,
                ..
            } => operand.as_const_real().map(|v| -v),
            Expr::Unary {
                op: UnaryOp::Plus,
                operand,
                ..
            } => operand.as_const_real(),
            _ => None,
        }
    }

    /// The referenced name, if the expression is a bare name.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            Expr::Name(n) => Some(&n.value),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Name(n) => f.write_str(&n.value),
            Expr::IntLit(v) => write!(f, "{}", v.value),
            Expr::RealLit(v) => write!(f, "{:?}", v.value),
            Expr::Unary { op, operand, .. } => match op {
                UnaryOp::Neg => write!(f, "-{operand}"),
                UnaryOp::Plus => write!(f, "+{operand}"),
            },
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Call { name, args, .. } => {
                write!(f, "{}(", name.value)?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    if let Some(kw) = &arg.keyword {
                        write!(f, "{}=", kw.value)?;
                    }
                    write!(f, "{}", arg.value)?;
                }
                f.write_str(")")
            }
        }
    }
}

/// A whole-array assignment statement `R = expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// The assigned array name.
    pub target: Spanned<String>,
    /// The right-hand side.
    pub value: Expr,
    /// Span of the whole statement.
    pub span: Span,
}

impl fmt::Display for Assign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.target.value, self.value)
    }
}

/// A type declaration such as `REAL, ARRAY(:,:) :: R, X, C1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// The base type keyword (`REAL`).
    pub type_name: Spanned<String>,
    /// The declared array rank (number of `:` in `ARRAY(:,:)`);
    /// 0 for scalars.
    pub rank: usize,
    /// The declared names.
    pub names: Vec<Spanned<String>>,
}

/// One statement of a [`Program`], with the structured-comment directive
/// that precedes it, if any (paper §6: "We plan to allow the user to flag
/// stencil assignment statements with a directive in the form of a
/// structured comment").
#[derive(Debug, Clone, PartialEq)]
pub struct DirectedStmt {
    /// The `!CMF$ …` directive text on the preceding line, if present.
    pub directive: Option<Spanned<String>>,
    /// The assignment statement.
    pub stmt: Assign,
}

/// A sequence of assignment statements, some flagged with directives —
/// the unit the paper's third implementation compiles without isolating
/// statements in their own subroutines.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The statements, in order.
    pub stmts: Vec<DirectedStmt>,
}

/// A `SUBROUTINE name(params) … END` unit containing stencil assignments.
///
/// The paper's second implementation required "the assignment statement for
/// a stencil computation to be isolated in a subroutine of its own"; this
/// type models exactly that unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Subroutine {
    /// The subroutine name.
    pub name: Spanned<String>,
    /// Dummy argument names in order.
    pub params: Vec<Spanned<String>>,
    /// Type declarations.
    pub decls: Vec<Decl>,
    /// Body statements (whole-array assignments).
    pub body: Vec<Assign>,
    /// Span of the whole unit.
    pub span: Span,
}

impl Subroutine {
    /// The declared rank of `name`, if a declaration covers it.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.decls.iter().find_map(|d| {
            d.names
                .iter()
                .any(|n| n.value.eq_ignore_ascii_case(name))
                .then_some(d.rank)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn name(s: &str) -> Expr {
        Expr::Name(Spanned::new(s.to_owned(), Span::point(0)))
    }

    #[test]
    fn const_int_folds_signs() {
        let neg = Expr::Unary {
            op: UnaryOp::Neg,
            operand: Box::new(Expr::IntLit(Spanned::new(3, Span::point(0)))),
            span: Span::point(0),
        };
        assert_eq!(neg.as_const_int(), Some(-3));
        let plus = Expr::Unary {
            op: UnaryOp::Plus,
            operand: Box::new(neg),
            span: Span::point(0),
        };
        assert_eq!(plus.as_const_int(), Some(-3));
        assert_eq!(name("X").as_const_int(), None);
    }

    #[test]
    fn display_round_trips_structure() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(name("A")),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(name("B")),
                rhs: Box::new(name("C")),
            }),
        };
        assert_eq!(e.to_string(), "(A + (B * C))");
    }

    #[test]
    fn rank_of_is_case_insensitive() {
        let sub = Subroutine {
            name: Spanned::new("S".into(), Span::point(0)),
            params: vec![],
            decls: vec![Decl {
                type_name: Spanned::new("REAL".into(), Span::point(0)),
                rank: 2,
                names: vec![Spanned::new("Xy".into(), Span::point(0))],
            }],
            body: vec![],
            span: Span::point(0),
        };
        assert_eq!(sub.rank_of("XY"), Some(2));
        assert_eq!(sub.rank_of("zz"), None);
    }
}
