//! Fortran 90 subset front end for the Connection Machine Convolution
//! Compiler.
//!
//! The Connection Machine Convolution Compiler (Bromley, Heller, McNerney &
//! Steele, PLDI 1991) processes array assignment statements whose right-hand
//! side is a sum of products of coefficient arrays and `CSHIFT`/`EOSHIFT`
//! shiftings of one source array. This crate provides the two front ends the
//! paper describes:
//!
//! * a **Fortran 90 parser** ([`parser`]) for assignment statements and for
//!   the isolated `SUBROUTINE` units required by the paper's second
//!   implementation, and
//! * a **`defstencil` s-expression parser** ([`sexp`]) matching the Lisp
//!   prototype of the first implementation.
//!
//! Both produce the same [`ast`], which the `cmcc-core` crate pattern-matches
//! into stencil IR.
//!
//! # Examples
//!
//! ```
//! use cmcc_front::parser::parse_assignment;
//!
//! let stmt = parse_assignment(
//!     "R = C1 * CSHIFT(X, DIM=1, SHIFT=-1) \
//!        + C2 * CSHIFT(X, DIM=2, SHIFT=-1) \
//!        + C3 * X \
//!        + C4 * CSHIFT(X, DIM=2, SHIFT=+1) \
//!        + C5 * CSHIFT(X, DIM=1, SHIFT=+1)",
//! )?;
//! assert_eq!(stmt.target.value, "R");
//! # Ok::<(), cmcc_front::error::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sexp;
pub mod span;
pub mod token;

pub use ast::{Arg, Assign, BinOp, Decl, DirectedStmt, Expr, Program, Subroutine, UnaryOp};
pub use error::ParseError;
pub use parser::{parse_assignment, parse_expression, parse_program, parse_subroutine};
pub use sexp::{parse_defstencil, DefStencil};
pub use span::{Span, Spanned};
