//! Byte-offset source spans used by the lexer, parser, and diagnostics.

use std::fmt;

/// A half-open byte range `[start, end)` into the original source text.
///
/// Spans are attached to tokens, AST nodes, and diagnostics so that errors
/// can point back at the offending Fortran text.
///
/// # Examples
///
/// ```
/// use cmcc_front::span::Span;
///
/// let span = Span::new(4, 10);
/// assert_eq!(span.len(), 6);
/// assert_eq!(&"R = CSHIFT(X, 1, -1)"[4..10], span.slice("R = CSHIFT(X, 1, -1)"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start, "span end {end} precedes start {start}");
        Span { start, end }
    }

    /// A zero-width span at `pos`, used for end-of-input diagnostics.
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The text this span covers in `source`.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds for `source` or does not fall on
    /// a character boundary.
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }

    /// 1-based (line, column) of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (idx, ch) in source.char_indices() {
            if idx >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A value tagged with the span it was parsed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Spanned<T> {
    /// The carried value.
    pub value: T,
    /// Where the value came from.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Tags `value` with `span`.
    pub fn new(value: T, span: Span) -> Self {
        Spanned { value, span }
    }

    /// Applies `f` to the value, preserving the span.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Spanned<U> {
        Spanned {
            value: f(self.value),
            span: self.span,
        }
    }
}

impl<T: fmt::Display> fmt::Display for Spanned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative_and_covering() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "R = X\n  + Y\n";
        let y = src.find('Y').unwrap();
        let span = Span::new(y, y + 1);
        assert_eq!(span.line_col(src), (2, 5));
    }

    #[test]
    fn point_span_is_empty() {
        assert!(Span::point(9).is_empty());
        assert_eq!(Span::point(9).len(), 0);
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn reversed_span_panics() {
        let _ = Span::new(5, 4);
    }

    #[test]
    fn spanned_map_keeps_span() {
        let s = Spanned::new(21u32, Span::new(1, 2));
        let t = s.map(|v| v * 2);
        assert_eq!(t.value, 42);
        assert_eq!(t.span, Span::new(1, 2));
    }
}
