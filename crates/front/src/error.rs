//! Front-end diagnostics: lexing and parsing errors with source locations.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// An error produced while lexing or parsing Fortran source.
///
/// The error carries a [`Span`] so callers can render a caret diagnostic
/// with [`ParseError::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Creates an error with a message and the span it applies to.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// The human-readable message, lowercase, without trailing punctuation.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source span the error points at.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders a multi-line diagnostic with the offending line and a caret.
    ///
    /// # Examples
    ///
    /// ```
    /// use cmcc_front::{error::ParseError, span::Span};
    ///
    /// let src = "R = +";
    /// let err = ParseError::new("expected an operand", Span::point(5));
    /// let text = err.render(src);
    /// assert!(text.contains("expected an operand"));
    /// assert!(text.contains("R = +"));
    /// ```
    pub fn render(&self, source: &str) -> String {
        let (line_no, col) = self.span.line_col(source);
        let line = source.lines().nth(line_no - 1).unwrap_or("");
        let caret_width = self
            .span
            .len()
            .max(1)
            .min(line.len().saturating_sub(col - 1).max(1));
        let mut out = String::new();
        out.push_str(&format!(
            "error: {} (line {line_no}, column {col})\n",
            self.message
        ));
        out.push_str(&format!("  |\n{line_no:3} | {line}\n  | "));
        out.push_str(&" ".repeat(col - 1));
        out.push_str(&"^".repeat(caret_width));
        out.push('\n');
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl Error for ParseError {}

/// Convenience alias for front-end results.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_column() {
        let src = "R = C1 ** X";
        let pos = src.find("**").unwrap();
        let err = ParseError::new("unexpected `*`", Span::new(pos, pos + 2));
        let text = err.render(src);
        assert!(text.contains("unexpected `*`"), "{text}");
        assert!(text.contains("^^"), "{text}");
        assert!(text.contains("line 1, column 8"), "{text}");
    }

    #[test]
    fn render_second_line() {
        let src = "R = X\nQ = ?";
        let pos = src.find('?').unwrap();
        let err = ParseError::new("unexpected character", Span::new(pos, pos + 1));
        let text = err.render(src);
        assert!(text.contains("line 2, column 5"), "{text}");
        assert!(text.contains("Q = ?"), "{text}");
    }

    #[test]
    fn display_is_single_line() {
        let err = ParseError::new("bad thing", Span::new(0, 1));
        assert_eq!(format!("{err}"), "bad thing at 0..1");
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(ParseError::new("x", Span::point(0)));
    }
}
