//! The `defstencil` s-expression front end.
//!
//! The paper's first implementation was prototyped in Lucid Common Lisp and
//! accepted definitions of the form:
//!
//! ```lisp
//! (defstencil cross (r x c1 c2 c3 c4 c5)
//!   (single-float single-float)
//!   (:= r (+ (* c1 (cshift x 1 -1))
//!            (* c2 (cshift x 2 -1))
//!            (* c3 x)
//!            (* c4 (cshift x 2 +1))
//!            (* c5 (cshift x 1 +1)))))
//! ```
//!
//! This module parses that form into the same [`crate::ast`] the Fortran
//! parser produces, so both front ends feed one recognizer.

use crate::ast::{Arg, Assign, BinOp, Expr, UnaryOp};
use crate::error::{ParseError, Result};
use crate::span::{Span, Spanned};

/// A parsed `defstencil` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct DefStencil {
    /// The stencil function name.
    pub name: String,
    /// Parameter names (result, source, coefficients), in order.
    pub params: Vec<String>,
    /// The element-type declaration pair, kept verbatim (e.g.
    /// `["single-float", "single-float"]`).
    pub types: Vec<String>,
    /// The assignment body, as ordinary AST.
    pub body: Assign,
}

/// Parses one `defstencil` form.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a well-formed `defstencil`.
///
/// # Examples
///
/// ```
/// use cmcc_front::sexp::parse_defstencil;
///
/// let def = parse_defstencil(
///     "(defstencil id (r x c) (single-float single-float) (:= r (* c x)))",
/// )?;
/// assert_eq!(def.name, "id");
/// assert_eq!(def.params, vec!["r", "x", "c"]);
/// # Ok::<(), cmcc_front::error::ParseError>(())
/// ```
pub fn parse_defstencil(source: &str) -> Result<DefStencil> {
    let sexp = read_sexp(source)?;
    lower_defstencil(&sexp)
}

/// An s-expression: an atom or a list, with a source span.
#[derive(Debug, Clone, PartialEq)]
pub enum Sexp {
    /// A symbol or number.
    Atom(Spanned<String>),
    /// A parenthesized list.
    List(Vec<Sexp>, Span),
}

impl Sexp {
    /// The span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Sexp::Atom(a) => a.span,
            Sexp::List(_, span) => *span,
        }
    }

    fn as_atom(&self) -> Option<&str> {
        match self {
            Sexp::Atom(a) => Some(&a.value),
            Sexp::List(..) => None,
        }
    }

    fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::List(items, _) => Some(items),
            Sexp::Atom(_) => None,
        }
    }
}

/// Reads a single s-expression from `source`.
///
/// # Errors
///
/// Returns a [`ParseError`] on unbalanced parentheses or trailing input.
pub fn read_sexp(source: &str) -> Result<Sexp> {
    let mut reader = Reader {
        bytes: source.as_bytes(),
        pos: 0,
    };
    reader.skip_ws();
    let sexp = reader.read()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err(ParseError::new(
            "unexpected input after s-expression",
            Span::point(reader.pos),
        ));
    }
    Ok(sexp)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b';' => {
                    while self.bytes.get(self.pos).is_some_and(|&c| c != b'\n') {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn read(&mut self) -> Result<Sexp> {
        match self.bytes.get(self.pos) {
            None => Err(ParseError::new(
                "unexpected end of input",
                Span::point(self.pos),
            )),
            Some(b'(') => {
                let start = self.pos;
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        None => {
                            return Err(ParseError::new("unclosed parenthesis", Span::point(start)))
                        }
                        Some(b')') => {
                            self.pos += 1;
                            return Ok(Sexp::List(items, Span::new(start, self.pos)));
                        }
                        _ => items.push(self.read()?),
                    }
                }
            }
            Some(b')') => Err(ParseError::new(
                "unbalanced `)`",
                Span::new(self.pos, self.pos + 1),
            )),
            Some(_) => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&b| {
                    !matches!(b, b' ' | b'\t' | b'\r' | b'\n' | b'(' | b')' | b';')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| {
                        ParseError::new("atom is not valid UTF-8", Span::new(start, self.pos))
                    })?
                    .to_owned();
                Ok(Sexp::Atom(Spanned::new(text, Span::new(start, self.pos))))
            }
        }
    }
}

fn lower_defstencil(sexp: &Sexp) -> Result<DefStencil> {
    let items = sexp
        .as_list()
        .ok_or_else(|| ParseError::new("expected a `defstencil` list", sexp.span()))?;
    let [head, name, params, types, body] = items else {
        return Err(ParseError::new(
            format!(
                "`defstencil` takes 4 arguments, found {}",
                items.len().saturating_sub(1)
            ),
            sexp.span(),
        ));
    };
    if head.as_atom().map(str::to_ascii_lowercase).as_deref() != Some("defstencil") {
        return Err(ParseError::new("expected `defstencil`", head.span()));
    }
    let name = name
        .as_atom()
        .ok_or_else(|| ParseError::new("stencil name must be a symbol", name.span()))?
        .to_owned();
    let params: Vec<String> = params
        .as_list()
        .ok_or_else(|| ParseError::new("parameter list must be a list", params.span()))?
        .iter()
        .map(|p| {
            p.as_atom()
                .map(str::to_owned)
                .ok_or_else(|| ParseError::new("parameter must be a symbol", p.span()))
        })
        .collect::<Result<_>>()?;
    let types: Vec<String> = types
        .as_list()
        .ok_or_else(|| ParseError::new("type list must be a list", types.span()))?
        .iter()
        .map(|t| {
            t.as_atom()
                .map(str::to_owned)
                .ok_or_else(|| ParseError::new("type must be a symbol", t.span()))
        })
        .collect::<Result<_>>()?;
    let body = lower_assign(body)?;
    Ok(DefStencil {
        name,
        params,
        types,
        body,
    })
}

fn lower_assign(sexp: &Sexp) -> Result<Assign> {
    let items = sexp
        .as_list()
        .ok_or_else(|| ParseError::new("body must be a `(:= r expr)` form", sexp.span()))?;
    let [op, target, value] = items else {
        return Err(ParseError::new(
            "body must have the form `(:= r expr)`",
            sexp.span(),
        ));
    };
    if op.as_atom() != Some(":=") {
        return Err(ParseError::new("expected `:=`", op.span()));
    }
    let Sexp::Atom(target) = target else {
        return Err(ParseError::new(
            "assignment target must be a symbol",
            target.span(),
        ));
    };
    let value = lower_expr(value)?;
    Ok(Assign {
        target: target.clone(),
        span: sexp.span(),
        value,
    })
}

fn lower_expr(sexp: &Sexp) -> Result<Expr> {
    match sexp {
        Sexp::Atom(atom) => lower_atom(atom),
        Sexp::List(items, span) => {
            let Some(head) = items.first() else {
                return Err(ParseError::new("empty expression", *span));
            };
            let head_name = head
                .as_atom()
                .ok_or_else(|| ParseError::new("operator must be a symbol", head.span()))?;
            match head_name.to_ascii_lowercase().as_str() {
                "+" => lower_variadic(BinOp::Add, &items[1..], *span),
                "-" => {
                    if items.len() == 2 {
                        let operand = lower_expr(&items[1])?;
                        Ok(Expr::Unary {
                            op: UnaryOp::Neg,
                            operand: Box::new(operand),
                            span: *span,
                        })
                    } else {
                        lower_variadic(BinOp::Sub, &items[1..], *span)
                    }
                }
                "*" => lower_variadic(BinOp::Mul, &items[1..], *span),
                "cshift" | "eoshift" => {
                    let args = items[1..]
                        .iter()
                        .map(|a| Ok(Arg::positional(lower_expr(a)?)))
                        .collect::<Result<Vec<_>>>()?;
                    Ok(Expr::Call {
                        name: Spanned::new(head_name.to_ascii_uppercase(), head.span()),
                        args,
                        span: *span,
                    })
                }
                other => Err(ParseError::new(
                    format!("unsupported operator `{other}` in stencil body"),
                    head.span(),
                )),
            }
        }
    }
}

fn lower_variadic(op: BinOp, operands: &[Sexp], span: Span) -> Result<Expr> {
    if operands.len() < 2 {
        return Err(ParseError::new(
            format!("`{}` needs at least two operands", op.symbol()),
            span,
        ));
    }
    let mut acc = lower_expr(&operands[0])?;
    for rhs in &operands[1..] {
        acc = Expr::Binary {
            op,
            lhs: Box::new(acc),
            rhs: Box::new(lower_expr(rhs)?),
        };
    }
    Ok(acc)
}

fn lower_atom(atom: &Spanned<String>) -> Result<Expr> {
    let text = &atom.value;
    if let Ok(v) = text.parse::<i64>() {
        return Ok(Expr::IntLit(Spanned::new(v, atom.span)));
    }
    // Accept explicit `+1` integers.
    if let Some(stripped) = text.strip_prefix('+') {
        if let Ok(v) = stripped.parse::<i64>() {
            return Ok(Expr::IntLit(Spanned::new(v, atom.span)));
        }
    }
    if let Ok(v) = text.parse::<f64>() {
        return Ok(Expr::RealLit(Spanned::new(v, atom.span)));
    }
    Ok(Expr::Name(atom.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const CROSS: &str = "(defstencil cross (r x c1 c2 c3 c4 c5)
       (single-float single-float)
       (:= r (+ (* c1 (cshift x 1 -1))
                (* c2 (cshift x 2 -1))
                (* c3 x)
                (* c4 (cshift x 2 +1))
                (* c5 (cshift x 1 +1)))))";

    #[test]
    fn parses_paper_defstencil() {
        let def = parse_defstencil(CROSS).unwrap();
        assert_eq!(def.name, "cross");
        assert_eq!(def.params.len(), 7);
        assert_eq!(def.types, vec!["single-float", "single-float"]);
        assert_eq!(def.body.target.value, "r");
    }

    #[test]
    fn variadic_add_left_associates() {
        let def = parse_defstencil(
            "(defstencil s (r x a b c) (single-float single-float) (:= r (+ a b c)))",
        )
        .unwrap();
        let Expr::Binary {
            op: BinOp::Add,
            lhs,
            ..
        } = &def.body.value
        else {
            panic!()
        };
        assert!(matches!(**lhs, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn unary_minus_from_single_operand() {
        let def = parse_defstencil(
            "(defstencil s (r x c) (single-float single-float) (:= r (- (* c x))))",
        )
        .unwrap();
        assert!(matches!(
            def.body.value,
            Expr::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
    }

    #[test]
    fn nested_cshift_lowered_as_call() {
        let def = parse_defstencil(
            "(defstencil s (r x c) (single-float single-float)
               (:= r (* c (cshift (cshift x 1 -1) 2 +1))))",
        )
        .unwrap();
        let Expr::Binary { rhs, .. } = &def.body.value else {
            panic!()
        };
        let Expr::Call { name, args, .. } = rhs.as_ref() else {
            panic!()
        };
        assert_eq!(name.value, "CSHIFT");
        assert!(matches!(args[0].value, Expr::Call { .. }));
        assert_eq!(args[2].value.as_const_int(), Some(1));
    }

    #[test]
    fn comments_are_skipped() {
        let def = parse_defstencil(
            "; the identity stencil\n(defstencil id (r x c) (a b) (:= r (* c x)))",
        )
        .unwrap();
        assert_eq!(def.name, "id");
    }

    #[test]
    fn unbalanced_parens_rejected() {
        assert!(read_sexp("(a (b)").is_err());
        assert!(read_sexp("a)").is_err());
        assert!(read_sexp("(a))").is_err());
    }

    #[test]
    fn wrong_arity_rejected() {
        let err = parse_defstencil("(defstencil s (r x))").unwrap_err();
        assert!(err.message().contains("4 arguments"));
    }

    #[test]
    fn unsupported_operator_rejected() {
        let err = parse_defstencil("(defstencil s (r x c) (a b) (:= r (/ c x)))").unwrap_err();
        assert!(err.message().contains('/'), "{}", err.message());
    }

    #[test]
    fn atoms_classify_numbers_and_names() {
        assert!(matches!(
            lower_atom(&Spanned::new("3".into(), Span::point(0))).unwrap(),
            Expr::IntLit(_)
        ));
        assert!(matches!(
            lower_atom(&Spanned::new("+2".into(), Span::point(0))).unwrap(),
            Expr::IntLit(_)
        ));
        assert!(matches!(
            lower_atom(&Spanned::new("1.5".into(), Span::point(0))).unwrap(),
            Expr::RealLit(_)
        ));
        assert!(matches!(
            lower_atom(&Spanned::new("x".into(), Span::point(0))).unwrap(),
            Expr::Name(_)
        ));
    }
}
