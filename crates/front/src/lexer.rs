//! Lexer for the free-form Fortran 90 subset.
//!
//! Handles `&` continuation lines (both trailing `&` and a leading `&` on
//! the continuation line), `!` comments, and case-preserving identifiers.
//! Newlines that terminate a statement are emitted as
//! [`TokenKind::Newline`] tokens; continuations swallow the newline.

use crate::error::{ParseError, Result};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `source` into a token stream terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on characters outside the subset or malformed
/// numeric literals.
///
/// # Examples
///
/// ```
/// use cmcc_front::lexer::lex;
/// use cmcc_front::token::TokenKind;
///
/// let tokens = lex("R = C1 * CSHIFT(X, 1, -1)")?;
/// assert!(matches!(tokens[0].kind, TokenKind::Ident(_)));
/// assert_eq!(tokens.last().unwrap().kind, TokenKind::Eof);
/// # Ok::<(), cmcc_front::error::ParseError>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'src> {
    source: &'src str,
    bytes: &'src [u8],
    pos: usize,
    tokens: Vec<Token>,
    /// Set when the previous line ended with `&`: the next newline does not
    /// terminate the statement.
    continuation: bool,
}

impl<'src> Lexer<'src> {
    fn new(source: &'src str) -> Self {
        Lexer {
            source,
            bytes: source.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            continuation: false,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens
            .push(Token::new(kind, Span::new(start, self.pos)));
    }

    fn run(mut self) -> Result<Vec<Token>> {
        while let Some(b) = self.peek() {
            let start = self.pos;
            match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'!' => {
                    // Comment to end of line; the newline itself is handled
                    // in the next iteration. Structured comments beginning
                    // with `!CMF$` become directive tokens (paper §6).
                    self.pos += 1;
                    let body_start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let body = &self.source[body_start..self.pos];
                    if let Some(rest) = body
                        .trim_start()
                        .strip_prefix("CMF$")
                        .or_else(|| body.trim_start().strip_prefix("cmf$"))
                    {
                        self.push(TokenKind::Directive(rest.trim().to_owned()), start);
                    }
                }
                b'\n' => {
                    self.pos += 1;
                    if self.continuation {
                        self.continuation = false;
                        // A continuation line may itself start with `&`.
                        self.skip_leading_continuation_marker();
                    } else if !matches!(
                        self.tokens.last().map(|t| &t.kind),
                        None | Some(TokenKind::Newline)
                    ) {
                        self.push(TokenKind::Newline, start);
                    }
                }
                b'&' => {
                    self.pos += 1;
                    self.continuation = true;
                }
                b'+' => {
                    self.pos += 1;
                    self.push(TokenKind::Plus, start);
                }
                b'-' => {
                    self.pos += 1;
                    self.push(TokenKind::Minus, start);
                }
                b'*' => {
                    self.pos += 1;
                    self.push(TokenKind::Star, start);
                }
                b'/' => {
                    self.pos += 1;
                    self.push(TokenKind::Slash, start);
                }
                b'=' => {
                    self.pos += 1;
                    self.push(TokenKind::Equals, start);
                }
                b'(' => {
                    self.pos += 1;
                    self.push(TokenKind::LParen, start);
                }
                b')' => {
                    self.pos += 1;
                    self.push(TokenKind::RParen, start);
                }
                b',' => {
                    self.pos += 1;
                    self.push(TokenKind::Comma, start);
                }
                b':' => {
                    self.pos += 1;
                    if self.peek() == Some(b':') {
                        self.pos += 1;
                        self.push(TokenKind::ColonColon, start);
                    } else {
                        self.push(TokenKind::Colon, start);
                    }
                }
                b'0'..=b'9' => self.lex_number(start)?,
                b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => {
                    self.lex_number(start)?
                }
                c if c.is_ascii_alphabetic() || c == b'_' => self.lex_ident(start),
                other => {
                    return Err(ParseError::new(
                        format!("unexpected character `{}`", other as char),
                        Span::new(start, start + 1),
                    ));
                }
            }
        }
        if self.continuation {
            return Err(ParseError::new(
                "continuation `&` at end of input",
                Span::point(self.pos),
            ));
        }
        let end = self.pos;
        self.tokens
            .push(Token::new(TokenKind::Eof, Span::point(end)));
        Ok(self.tokens)
    }

    /// After a continued newline, skip whitespace and an optional leading
    /// `&` marker (Fortran allows `... &\n& more`).
    fn skip_leading_continuation_marker(&mut self) {
        let mut probe = self.pos;
        while matches!(self.bytes.get(probe), Some(b' ' | b'\t' | b'\r')) {
            probe += 1;
        }
        if self.bytes.get(probe) == Some(&b'&') {
            self.pos = probe + 1;
        }
    }

    fn lex_ident(&mut self, start: usize) {
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        let text = self.source[start..self.pos].to_owned();
        self.push(TokenKind::Ident(text), start);
    }

    fn lex_number(&mut self, start: usize) -> Result<()> {
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.pos += 1;
                }
                b'.' if !saw_dot && !saw_exp => {
                    // Guard against `1.0.2`; also allow `2.` trailing dot.
                    saw_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' | b'd' | b'D' if !saw_exp => {
                    // Fortran allows D exponents for double precision.
                    saw_exp = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.pos += 1;
                    }
                    if !self.peek().is_some_and(|d| d.is_ascii_digit()) {
                        return Err(ParseError::new(
                            "exponent has no digits",
                            Span::new(start, self.pos),
                        ));
                    }
                }
                _ => break,
            }
        }
        let text = &self.source[start..self.pos];
        let span = Span::new(start, self.pos);
        if saw_dot || saw_exp {
            let normalized = text.replace(['d', 'D'], "E");
            let value: f64 = normalized
                .parse()
                .map_err(|_| ParseError::new(format!("invalid real literal `{text}`"), span))?;
            self.push(TokenKind::Real(value), start);
        } else {
            let value: i64 = text
                .parse()
                .map_err(|_| ParseError::new(format!("invalid integer literal `{text}`"), span))?;
            self.push(TokenKind::Int(value), start);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        let k = kinds("R = C1 * X");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("R".into()),
                TokenKind::Equals,
                TokenKind::Ident("C1".into()),
                TokenKind::Star,
                TokenKind::Ident("X".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn continuation_swallows_newline() {
        let k = kinds("R = X &\n  + Y");
        assert!(!k.contains(&TokenKind::Newline), "{k:?}");
    }

    #[test]
    fn continuation_with_leading_ampersand() {
        let k = kinds("R = X &\n  & + Y");
        assert!(!k.contains(&TokenKind::Newline), "{k:?}");
        assert_eq!(k.iter().filter(|t| **t == TokenKind::Plus).count(), 1);
    }

    #[test]
    fn newline_terminates_statement() {
        let k = kinds("R = X\nQ = Y");
        assert_eq!(k.iter().filter(|t| **t == TokenKind::Newline).count(), 1);
    }

    #[test]
    fn blank_lines_collapse() {
        let k = kinds("R = X\n\n\nQ = Y\n");
        assert_eq!(k.iter().filter(|t| **t == TokenKind::Newline).count(), 2);
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("R = X ! the identity stencil");
        assert_eq!(k.len(), 4); // R = X EOF
    }

    #[test]
    fn numbers_integer_and_real() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("1.5")[0], TokenKind::Real(1.5));
        assert_eq!(kinds("2.")[0], TokenKind::Real(2.0));
        assert_eq!(kinds(".25")[0], TokenKind::Real(0.25));
        assert_eq!(kinds("1E3")[0], TokenKind::Real(1000.0));
        assert_eq!(kinds("1.0D-2")[0], TokenKind::Real(0.01));
    }

    #[test]
    fn double_colon_vs_colon() {
        assert_eq!(
            kinds(":: :"),
            vec![TokenKind::ColonColon, TokenKind::Colon, TokenKind::Eof]
        );
    }

    #[test]
    fn minus_is_separate_token() {
        // `-1` lexes as Minus, Int(1); the parser folds unary minus.
        let k = kinds("-1");
        assert_eq!(k[0], TokenKind::Minus);
        assert_eq!(k[1], TokenKind::Int(1));
    }

    #[test]
    fn rejects_stray_character() {
        let err = lex("R = #").unwrap_err();
        assert!(err.message().contains('#'));
    }

    #[test]
    fn rejects_trailing_continuation() {
        let err = lex("R = X &").unwrap_err();
        assert!(err.message().contains("end of input"));
    }

    #[test]
    fn rejects_empty_exponent() {
        let err = lex("1.0E+").unwrap_err();
        assert!(err.message().contains("exponent"));
    }

    #[test]
    fn spans_are_accurate() {
        let src = "R = CSHIFT";
        let toks = lex(src).unwrap();
        let cshift = &toks[2];
        assert_eq!(cshift.span.slice(src), "CSHIFT");
    }
}
