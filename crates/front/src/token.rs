//! Token definitions for the Fortran 90 subset accepted by the compiler.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
///
/// Fortran has no reserved words, so keywords such as `SUBROUTINE` or
/// `CSHIFT` are lexed as [`TokenKind::Ident`] and recognized by the parser
/// via case-insensitive comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword, stored in its original spelling.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A real literal such as `1.5`, `2.`, or `1.0E-3`.
    Real(f64),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Equals,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `::`
    ColonColon,
    /// `:`
    Colon,
    /// A structured comment directive, e.g. `!CMF$ STENCIL` (the paper's
    /// §6 mechanism for flagging stencil candidates). Carries the text
    /// after the `!CMF$` sigil, trimmed.
    Directive(String),
    /// End of statement (newline outside a continuation).
    Newline,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Real(v) => format!("real `{v}`"),
            TokenKind::Plus => "`+`".to_owned(),
            TokenKind::Minus => "`-`".to_owned(),
            TokenKind::Star => "`*`".to_owned(),
            TokenKind::Slash => "`/`".to_owned(),
            TokenKind::Equals => "`=`".to_owned(),
            TokenKind::LParen => "`(`".to_owned(),
            TokenKind::RParen => "`)`".to_owned(),
            TokenKind::Comma => "`,`".to_owned(),
            TokenKind::ColonColon => "`::`".to_owned(),
            TokenKind::Colon => "`:`".to_owned(),
            TokenKind::Directive(text) => format!("directive `!CMF$ {text}`"),
            TokenKind::Newline => "end of statement".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
        }
    }

    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// Case-insensitive keyword test, e.g. `tok.is_keyword("CSHIFT")`.
    pub fn is_keyword(&self, keyword: &str) -> bool {
        self.as_ident()
            .is_some_and(|name| name.eq_ignore_ascii_case(keyword))
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.kind.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_test_is_case_insensitive() {
        let t = TokenKind::Ident("CsHiFt".to_owned());
        assert!(t.is_keyword("cshift"));
        assert!(t.is_keyword("CSHIFT"));
        assert!(!t.is_keyword("eoshift"));
    }

    #[test]
    fn non_ident_is_not_keyword() {
        assert!(!TokenKind::Plus.is_keyword("plus"));
        assert_eq!(TokenKind::Plus.as_ident(), None);
    }

    #[test]
    fn describe_mentions_payload() {
        assert_eq!(TokenKind::Int(42).describe(), "integer `42`");
        assert!(TokenKind::Ident("R".into()).describe().contains('R'));
    }
}
