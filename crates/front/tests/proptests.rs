//! Property tests for the front end: the printer and parser are inverse,
//! and the lexer is total (never panics, whatever the input).

use cmcc_front::ast::{Arg, BinOp, Expr, UnaryOp};
use cmcc_front::lexer::lex;
use cmcc_front::parser::{parse_assignment, parse_expression};
use cmcc_front::span::{Span, Spanned};
use cmcc_testkit::{property, Rng};

fn nm(s: String) -> Spanned<String> {
    Spanned::new(s, Span::point(0))
}

/// Arbitrary identifier in the Fortran subset (avoiding spellings the
/// assignment grammar treats specially).
fn gen_ident(rng: &mut Rng) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_";
    loop {
        let mut s = String::new();
        s.push(*rng.pick(FIRST) as char);
        for _ in 0..rng.usize_in(0, 7) {
            s.push(*rng.pick(REST) as char);
        }
        let keyword = ["END", "SUBROUTINE", "REAL", "ARRAY"]
            .iter()
            .any(|k| s.eq_ignore_ascii_case(k));
        if !keyword {
            return s;
        }
    }
}

/// Arbitrary expressions whose printed form reparses to the same tree:
/// nonnegative literals (a leading minus reparses as unary), unary minus
/// over non-literals only.
fn gen_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.ratio(1, 3) {
        return match rng.u64_below(3) {
            0 => Expr::Name(nm(gen_ident(rng))),
            1 => Expr::IntLit(Spanned::new(rng.i64_in(0, 99_999), Span::point(0))),
            _ => Expr::RealLit(Spanned::new(
                rng.u64_below(1_000_000) as f64 * 0.001 + 0.5,
                Span::point(0),
            )),
        };
    }
    match rng.u64_below(3) {
        0 => {
            let op = *rng.pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div]);
            Expr::Binary {
                op,
                lhs: Box::new(gen_expr(rng, depth - 1)),
                rhs: Box::new(gen_expr(rng, depth - 1)),
            }
        }
        // Unary minus over a name (literals would re-tokenize).
        1 => Expr::Unary {
            op: UnaryOp::Neg,
            operand: Box::new(Expr::Name(nm(gen_ident(rng)))),
            span: Span::point(0),
        },
        // Calls with positional and keyword arguments.
        _ => {
            let args = (0..rng.usize_in(0, 3))
                .map(|_| {
                    let value = gen_expr(rng, depth - 1);
                    if rng.bool() {
                        Arg::keyword(nm(gen_ident(rng)), value)
                    } else {
                        Arg::positional(value)
                    }
                })
                .collect();
            Expr::Call {
                name: nm(gen_ident(rng)),
                args,
                span: Span::point(0),
            }
        }
    }
}

/// Structural equality ignoring spans.
fn same_shape(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Name(x), Expr::Name(y)) => x.value == y.value,
        (Expr::IntLit(x), Expr::IntLit(y)) => x.value == y.value,
        (Expr::RealLit(x), Expr::RealLit(y)) => x.value.to_bits() == y.value.to_bits(),
        (
            Expr::Unary {
                op: oa, operand: a, ..
            },
            Expr::Unary {
                op: ob, operand: b, ..
            },
        ) => oa == ob && same_shape(a, b),
        (
            Expr::Binary {
                op: oa,
                lhs: la,
                rhs: ra,
            },
            Expr::Binary {
                op: ob,
                lhs: lb,
                rhs: rb,
            },
        ) => oa == ob && same_shape(la, lb) && same_shape(ra, rb),
        (
            Expr::Call {
                name: na, args: aa, ..
            },
            Expr::Call {
                name: nb, args: ab, ..
            },
        ) => {
            na.value == nb.value
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(x, y)| {
                    x.keyword.as_ref().map(|k| &k.value) == y.keyword.as_ref().map(|k| &k.value)
                        && same_shape(&x.value, &y.value)
                })
        }
        _ => false,
    }
}

/// print → parse is the identity on expression structure.
#[test]
fn display_parse_round_trip() {
    property("display_parse_round_trip", 256, |rng| {
        let expr = gen_expr(rng, 4);
        let text = expr.to_string();
        let reparsed =
            parse_expression(&text).unwrap_or_else(|e| panic!("`{text}` failed to reparse: {e}"));
        assert!(
            same_shape(&expr, &reparsed),
            "`{text}` reparsed as `{reparsed}`"
        );
    });
}

/// The lexer is total: arbitrary input produces tokens or a clean
/// error, never a panic, and spans stay within bounds.
#[test]
fn lexer_is_total() {
    property("lexer_is_total", 256, |rng| {
        let len = rng.usize_in(0, 201);
        let input: String = (0..len)
            .map(|_| loop {
                // Mostly printable ASCII, sometimes any Unicode scalar.
                if rng.ratio(7, 8) {
                    return (rng.u64_below(95) as u8 + 0x20) as char;
                }
                if let Some(c) = char::from_u32(rng.u64_below(0x11_0000) as u32) {
                    return c;
                }
            })
            .collect();
        if let Ok(tokens) = lex(&input) {
            for t in &tokens {
                assert!(t.span.end <= input.len());
                assert!(t.span.start <= t.span.end);
            }
        }
    });
}

/// Assignments round-trip through display too.
#[test]
fn assignment_round_trip() {
    property("assignment_round_trip", 256, |rng| {
        let target = gen_ident(rng);
        let expr = gen_expr(rng, 4);
        let text = format!("{target} = {expr}");
        let stmt = parse_assignment(&text).unwrap_or_else(|e| panic!("`{text}` failed: {e}"));
        assert_eq!(&stmt.target.value, &target);
        assert!(same_shape(&stmt.value, &expr));
    });
}

/// Continuations never change the token stream (modulo the newline).
#[test]
fn continuations_are_transparent() {
    property("continuations_are_transparent", 256, |rng| {
        let expr = gen_expr(rng, 4);
        let text = format!("R = {expr}");
        // Break the statement after every '+' with a continuation.
        let broken = text.replace("+ ", "+ &\n  ");
        let a = parse_assignment(&text).unwrap();
        let b = parse_assignment(&broken).unwrap_or_else(|e| panic!("`{broken}` failed: {e}"));
        assert!(same_shape(&a.value, &b.value));
    });
}
