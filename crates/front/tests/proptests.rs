//! Property tests for the front end: the printer and parser are inverse,
//! and the lexer is total (never panics, whatever the input).

use cmcc_front::ast::{Arg, BinOp, Expr, UnaryOp};
use cmcc_front::lexer::lex;
use cmcc_front::parser::{parse_assignment, parse_expression};
use cmcc_front::span::{Span, Spanned};
use proptest::prelude::*;

fn nm(s: String) -> Spanned<String> {
    Spanned::new(s, Span::point(0))
}

/// Arbitrary identifier in the Fortran subset.
fn arb_ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,6}".prop_filter(
        // Avoid spellings the assignment grammar treats specially.
        "keywords",
        |s| {
            !["END", "SUBROUTINE", "REAL", "ARRAY"]
                .iter()
                .any(|k| s.eq_ignore_ascii_case(k))
        },
    )
}

/// Arbitrary expressions whose printed form reparses to the same tree:
/// nonnegative literals (a leading minus reparses as unary), unary minus
/// over non-literals only.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_ident().prop_map(|s| Expr::Name(nm(s))),
        (0i64..100_000).prop_map(|v| Expr::IntLit(Spanned::new(v, Span::point(0)))),
        (0u32..1_000_000).prop_map(|v| {
            Expr::RealLit(Spanned::new(f64::from(v) * 0.001 + 0.5, Span::point(0)))
        }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            // Binary operators.
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div)
                ]
            )
                .prop_map(|(lhs, rhs, op)| Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }),
            // Unary minus over a name (literals would re-tokenize).
            arb_ident().prop_map(|s| Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(Expr::Name(nm(s))),
                span: Span::point(0),
            }),
            // Calls with positional and keyword arguments.
            (
                arb_ident(),
                proptest::collection::vec((inner, proptest::option::of(arb_ident())), 0..3)
            )
                .prop_map(|(name, args)| Expr::Call {
                    name: nm(name),
                    args: args
                        .into_iter()
                        .map(|(value, kw)| match kw {
                            Some(k) => Arg::keyword(nm(k), value),
                            None => Arg::positional(value),
                        })
                        .collect(),
                    span: Span::point(0),
                }),
        ]
    })
}

/// Structural equality ignoring spans.
fn same_shape(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Name(x), Expr::Name(y)) => x.value == y.value,
        (Expr::IntLit(x), Expr::IntLit(y)) => x.value == y.value,
        (Expr::RealLit(x), Expr::RealLit(y)) => x.value.to_bits() == y.value.to_bits(),
        (
            Expr::Unary {
                op: oa, operand: a, ..
            },
            Expr::Unary {
                op: ob, operand: b, ..
            },
        ) => oa == ob && same_shape(a, b),
        (
            Expr::Binary {
                op: oa,
                lhs: la,
                rhs: ra,
            },
            Expr::Binary {
                op: ob,
                lhs: lb,
                rhs: rb,
            },
        ) => oa == ob && same_shape(la, lb) && same_shape(ra, rb),
        (
            Expr::Call {
                name: na, args: aa, ..
            },
            Expr::Call {
                name: nb, args: ab, ..
            },
        ) => {
            na.value == nb.value
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(x, y)| {
                    x.keyword.as_ref().map(|k| &k.value) == y.keyword.as_ref().map(|k| &k.value)
                        && same_shape(&x.value, &y.value)
                })
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse is the identity on expression structure.
    #[test]
    fn display_parse_round_trip(expr in arb_expr()) {
        let text = expr.to_string();
        let reparsed = parse_expression(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to reparse: {e}"));
        prop_assert!(
            same_shape(&expr, &reparsed),
            "`{}` reparsed as `{}`",
            text,
            reparsed
        );
    }

    /// The lexer is total: arbitrary input produces tokens or a clean
    /// error, never a panic, and spans stay within bounds.
    #[test]
    fn lexer_is_total(input in "\\PC{0,200}") {
        if let Ok(tokens) = lex(&input) {
            for t in &tokens {
                prop_assert!(t.span.end <= input.len());
                prop_assert!(t.span.start <= t.span.end);
            }
        }
    }

    /// Assignments round-trip through display too.
    #[test]
    fn assignment_round_trip(target in arb_ident(), expr in arb_expr()) {
        let text = format!("{target} = {expr}");
        let stmt = parse_assignment(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed: {e}"));
        prop_assert_eq!(&stmt.target.value, &target);
        prop_assert!(same_shape(&stmt.value, &expr));
    }

    /// Continuations never change the token stream (modulo the newline).
    #[test]
    fn continuations_are_transparent(expr in arb_expr()) {
        let text = format!("R = {expr}");
        // Break the statement after every '+' with a continuation.
        let broken = text.replace("+ ", "+ &\n  ");
        let a = parse_assignment(&text).unwrap();
        let b = parse_assignment(&broken)
            .unwrap_or_else(|e| panic!("`{broken}` failed: {e}"));
        prop_assert!(same_shape(&a.value, &b.value));
    }
}
